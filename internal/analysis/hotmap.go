package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// hotmapFiles are the engine hot-path files covered by the million-node
// memory layout (CSR adjacency, struct-of-arrays node state): per-node maps
// there were deliberately replaced with position-indexed flat slices, and a
// map creeping back in silently reintroduces hashing, pointer chasing, and
// per-node allocation on the per-round path.
var hotmapFiles = map[string]bool{
	"congest.go":  true, // Graph + Env (Send once-per-neighbour check)
	"engine.go":   true, // per-run environment construction
	"shard.go":    true, // shard workers and the per-destination merge
	"nodes.go":    true, // facility/client state machines
	"frontier.go": true, // active-set bookkeeping on the per-round path
}

// Hotmap guards that layout: inside the hot-path files of the protocol
// engine packages, allocating a map — make(map[...]...) or a map composite
// literal — is flagged. Cold-path code that legitimately needs a map in one
// of these files can exempt the line with `//flvet:coldpath <reason>`.
var Hotmap = &Analyzer{
	Name:     "hotmap",
	Doc:      "forbid map allocation in engine hot-path files (CSR/SoA memory layout)",
	Packages: []string{"dfl/internal/congest", "dfl/internal/core"},
	Run:      runHotmap,
}

func runHotmap(pass *Pass) {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if !hotmapFiles[name] || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var pos ast.Node
			switch e := n.(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok || id.Name != "make" || len(e.Args) == 0 {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true // shadowed make
				}
				if !isMapType(pass.Info, e.Args[0]) {
					return true
				}
				pos = e
			case *ast.CompositeLit:
				if e.Type == nil || !isMapType(pass.Info, e.Type) {
					return true
				}
				pos = e
			default:
				return true
			}
			if _, exempt := pass.directiveAt(pos.Pos(), "coldpath"); exempt {
				return true
			}
			pass.Reportf(pos.Pos(), "map allocation in engine hot-path file %s: use a position-indexed flat slice (CSR/SoA layout); mark genuine cold paths //flvet:coldpath", name)
			return true
		})
	}
}

// isMapType reports whether expr denotes a map type, either syntactically
// or through a named type whose underlying type is a map.
func isMapType(info *types.Info, expr ast.Expr) bool {
	if _, ok := ast.Unparen(expr).(*ast.MapType); ok {
		return true
	}
	if tv, ok := info.Types[expr]; ok && tv.IsType() {
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}
