package analysis

import (
	"go/ast"
	"go/types"
)

// protocolPackages are the packages whose code participates in (or defines)
// protocol executions: everything here must be a pure function of the
// seeded configuration.
var protocolPackages = []string{
	"dfl/internal/core",
	"dfl/internal/congest",
	"dfl/internal/seq",
}

// All returns the flvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Congestmsg, Poolonly, Failclosed, Hotmap, Bitbudget, Shardlocal, Dettaint}
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// envMethodCall reports whether call invokes method `Send` or `Broadcast`
// on the simulator's *congest.Env (matched structurally — receiver type
// named Env in a package named congest — so testdata packages exercising
// the real engine type are recognized too). It returns the method name.
func envMethodCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "congest" {
		return "", false
	}
	if fn.Name() != "Send" && fn.Name() != "Broadcast" {
		return "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Env" {
		return "", false
	}
	return fn.Name(), true
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// receiverOfFunc returns the named type a FuncDecl is a method on (nil for
// plain functions).
func receiverOfFunc(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	def, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
