package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Dettaint is the dataflow deepening of detrand/maporder: instead of
// flagging nondeterministic *calls*, it tracks nondeterministic *values* —
// wall-clock reads, environment lookups, host-dependent runtime queries,
// map-iteration order, and reads of package-level state mutated outside
// init — and reports only when such a value reaches protocol-visible
// state: the congest wire (Env.Send/Broadcast, //flvet:encoder
// functions), an RNG seed, or a Seed-named field.
//
// Taint propagates through assignments, expressions, and one level of
// package-local calls (per-function summaries record which parameters
// flow to the return value and which reach a sink inside). Map ranges
// already blessed with //flvet:ordered contribute no taint; a
// package-level var documented immutable-after-init may be annotated
// `//flvet:frozen <why>`; a sink call whose tainted input provably cannot
// alter protocol output may be annotated `//flvet:nondet`.
//
// Soundness caveats (documented in DESIGN.md §9): taint does not cross
// interface calls, function values, goroutine spawns, or closure bodies,
// and a tainted receiver does not taint its method results.
var Dettaint = &Analyzer{
	Name:     "dettaint",
	Doc:      "forbid nondeterministic values (clock, env, map order, mutable globals) from reaching the wire, RNG seeds, or per-round state",
	Packages: transportScopedPackages,
	Run:      runDettaint,
}

// taintVal is the dataflow fact: which sources a value may carry. Bit i
// (i < 62) marks "derived from parameter i" (used while summarizing);
// taintInherent marks a genuine nondeterministic source, with reason
// naming the first one.
type taintVal struct {
	mask   uint64
	reason string
}

const taintInherent = uint64(1) << 63

func (t taintVal) zero() bool { return t.mask == 0 }

func (t taintVal) or(u taintVal) taintVal {
	r := t.reason
	if r == "" {
		r = u.reason
	}
	return taintVal{mask: t.mask | u.mask, reason: r}
}

func inherentTaint(reason string) taintVal {
	return taintVal{mask: taintInherent, reason: reason}
}

func joinTaintFacts(dst, src varFacts[taintVal]) (varFacts[taintVal], bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k, v := range src { //flvet:ordered per-key union into a map, order-free
		merged := dst[k].or(v)
		if merged != dst[k] {
			dst[k] = merged
			changed = true
		}
	}
	return dst, changed
}

// taintSummary is a function's one-level call summary.
type taintSummary struct {
	// returnMask: parameter bits (and taintInherent) that may flow into a
	// returned value.
	returnMask   uint64
	returnReason string
	// sinkMask: parameter bits that may reach a sink inside the function;
	// callers report when they pass tainted arguments for these.
	sinkMask uint64
	sinkDesc string
}

type dettaintCtx struct {
	pass      *Pass
	cg        *callGraph
	encoders  map[*types.Func]int
	summaries map[*types.Func]*taintSummary
	// mutableGlobals are package-level vars written outside init and not
	// annotated //flvet:frozen; reading one is a taint source.
	mutableGlobals map[*types.Var]bool
	reported       map[token.Pos]bool
}

func runDettaint(pass *Pass) {
	if transportBoundary(pass) {
		return
	}
	cx := &dettaintCtx{
		pass:      pass,
		cg:        buildCallGraph(pass),
		encoders:  collectEncodersQuiet(pass),
		summaries: map[*types.Func]*taintSummary{},
		reported:  map[token.Pos]bool{},
	}
	cx.collectMutableGlobals()
	for round := 0; round < 32; round++ {
		changed := false
		for _, fn := range cx.cg.order {
			s := cx.summarize(fn)
			if old := cx.summaries[fn]; old == nil || *old != *s {
				cx.summaries[fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range cx.cg.order {
		cx.reportFn(fn)
	}
}

// collectMutableGlobals records package-level vars assigned (directly or
// through an index/selector/deref chain) anywhere outside func init.
func (cx *dettaintCtx) collectMutableGlobals() {
	cx.mutableGlobals = map[*types.Var]bool{}
	frozen := map[*types.Var]bool{}
	for _, file := range cx.pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					_, declFrozen := docDirective(decl.Doc, "frozen")
					if !declFrozen {
						_, declFrozen = docDirective(vs.Doc, "frozen")
					}
					if declFrozen {
						for _, name := range vs.Names {
							if v, ok := cx.pass.Info.Defs[name].(*types.Var); ok {
								frozen[v] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if decl.Body == nil || (decl.Recv == nil && decl.Name.Name == "init") {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					var targets []ast.Expr
					switch n := n.(type) {
					case *ast.AssignStmt:
						targets = n.Lhs
					case *ast.IncDecStmt:
						targets = []ast.Expr{n.X}
					default:
						return true
					}
					for _, t := range targets {
						if v := cx.globalVarOf(rootIdent(t)); v != nil {
							cx.mutableGlobals[v] = true
						}
					}
					return true
				})
			}
		}
	}
	for v := range frozen { //flvet:ordered per-key delete, order-free
		delete(cx.mutableGlobals, v)
	}
}

// rootIdent strips index/selector/deref/paren chains down to the base
// identifier of an lvalue.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// globalVarOf resolves id to a package-level var of the analyzed package.
func (cx *dettaintCtx) globalVarOf(id *ast.Ident) *types.Var {
	if id == nil {
		return nil
	}
	v, ok := cx.pass.Info.Uses[id].(*types.Var)
	if !ok {
		v, ok = cx.pass.Info.Defs[id].(*types.Var)
	}
	if !ok || v == nil {
		return nil
	}
	if cx.pass.Pkg.Scope().Lookup(v.Name()) != types.Object(v) {
		return nil
	}
	return v
}

// sourceCall recognizes the inherent nondeterminism sources.
func sourceCall(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "wall-clock read time." + fn.Name(), true
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "environment read os." + fn.Name(), true
		}
	case "runtime":
		switch fn.Name() {
		case "NumGoroutine", "NumCPU", "GOMAXPROCS":
			return "host-dependent runtime query runtime." + fn.Name(), true
		}
	}
	return "", false
}

// taintOf computes the taint carried by an expression under env.
func (cx *dettaintCtx) taintOf(e ast.Expr, env varFacts[taintVal]) taintVal {
	var t taintVal
	switch e := e.(type) {
	case nil:
		return t
	case *ast.Ident:
		if v, ok := cx.pass.Info.Uses[e].(*types.Var); ok && v != nil {
			if f, seen := env[v]; seen {
				t = t.or(f)
			}
			if cx.mutableGlobals[v] {
				t = t.or(inherentTaint("read of mutable package-level state " + v.Name()))
			}
		}
		return t
	case *ast.ParenExpr:
		return cx.taintOf(e.X, env)
	case *ast.SelectorExpr:
		return cx.taintOf(e.X, env)
	case *ast.StarExpr:
		return cx.taintOf(e.X, env)
	case *ast.UnaryExpr:
		return cx.taintOf(e.X, env)
	case *ast.BinaryExpr:
		return cx.taintOf(e.X, env).or(cx.taintOf(e.Y, env))
	case *ast.IndexExpr:
		return cx.taintOf(e.X, env).or(cx.taintOf(e.Index, env))
	case *ast.SliceExpr:
		t = cx.taintOf(e.X, env).or(cx.taintOf(e.Low, env)).or(cx.taintOf(e.High, env))
		return t.or(cx.taintOf(e.Max, env))
	case *ast.TypeAssertExpr:
		return cx.taintOf(e.X, env)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t = t.or(cx.taintOf(kv.Value, env))
				continue
			}
			t = t.or(cx.taintOf(elt, env))
		}
		return t
	case *ast.CallExpr:
		fn := calleeFunc(cx.pass.Info, e)
		if reason, isSource := sourceCall(fn); isSource {
			return inherentTaint(reason)
		}
		if fn != nil {
			if _, local := cx.cg.decls[fn]; local {
				s := cx.summaries[fn]
				if s == nil {
					return t // first summary round: optimistic bottom
				}
				if s.returnMask&taintInherent != 0 {
					t = t.or(inherentTaint(s.returnReason))
				}
				for i, arg := range e.Args {
					if i < 62 && s.returnMask&(1<<uint(i)) != 0 {
						t = t.or(cx.taintOf(arg, env))
					}
				}
				return t
			}
		}
		// Unknown callee (imported, builtin, conversion, dynamic): its
		// result may carry any input's taint.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			t = t.or(cx.taintOf(sel.X, env))
		}
		for _, arg := range e.Args {
			t = t.or(cx.taintOf(arg, env))
		}
		return t
	}
	return t
}

// stepTaint is the transfer function over one flat CFG node.
func (cx *dettaintCtx) stepTaint(n ast.Node, env varFacts[taintVal]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			t := cx.taintOf(n.Rhs[0], env)
			for _, lhs := range n.Lhs {
				cx.setFact(env, lhs, t, n.Tok)
			}
			return
		}
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break
			}
			cx.setFact(env, lhs, cx.taintOf(n.Rhs[i], env), n.Tok)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var t taintVal
				if i < len(vs.Values) {
					t = cx.taintOf(vs.Values[i], env)
				} else if len(vs.Values) == 1 {
					t = cx.taintOf(vs.Values[0], env)
				}
				cx.setFact(env, name, t, token.DEFINE)
			}
		}
	case *RangeHeader:
		t := cx.taintOf(n.Range.X, env)
		if xt := cx.pass.Info.TypeOf(n.Range.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				if _, ordered := cx.pass.directiveAt(n.Range.Pos(), "ordered"); !ordered {
					t = t.or(inherentTaint("map iteration order"))
				}
			}
		}
		key, value := rangeVars(cx.pass.Info, n.Range)
		for _, v := range [...]*types.Var{key, value} {
			if v == nil {
				continue
			}
			if t.zero() {
				delete(env, v)
			} else {
				env[v] = t
			}
		}
	}
}

func (cx *dettaintCtx) setFact(env varFacts[taintVal], lhs ast.Expr, t taintVal, tok token.Token) {
	v := lhsVar(cx.pass.Info, lhs)
	if v == nil {
		return
	}
	if tok != token.ASSIGN && tok != token.DEFINE {
		t = env[v].or(t) // compound assignment accumulates
	}
	if t.zero() {
		delete(env, v)
	} else {
		env[v] = t
	}
}

// scanFn runs the taint dataflow over one function. With seedParams, each
// parameter starts carrying its own bit (the summarizing configuration).
// sink is called at every sink with the union taint of the values that
// reach it; ret is called with the taint of each returned value.
func (cx *dettaintCtx) scanFn(fn *types.Func, seedParams bool, sink func(pos token.Pos, desc string, t taintVal), ret func(t taintVal)) {
	fd := cx.cg.decls[fn]
	if fd == nil || fd.Body == nil {
		return
	}
	entry := varFacts[taintVal]{}
	if seedParams {
		i := 0
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := cx.pass.Info.Defs[name].(*types.Var); ok && i < 62 {
						entry[v] = taintVal{mask: 1 << uint(i)}
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
		}
	}
	cfg := BuildCFG(fd.Body)
	transfer := func(b *Block, env varFacts[taintVal]) varFacts[taintVal] {
		for _, n := range b.Nodes {
			cx.stepTaint(n, env)
		}
		return env
	}
	states := forwardFlow(cfg, entry, joinTaintFacts, varFacts[taintVal].clone, transfer, nil)
	for _, b := range cfg.Blocks {
		st, ok := states[b]
		if !ok {
			continue
		}
		env := st.clone()
		for _, n := range b.Nodes {
			if r, isRet := n.(*ast.ReturnStmt); isRet && ret != nil {
				for _, res := range r.Results {
					ret(cx.taintOf(res, env))
				}
			}
			cx.visitSinks(n, env, sink)
			cx.stepTaint(n, env)
		}
	}
}

// visitSinks finds every sink in one flat CFG node and hands its taint to
// the callback.
func (cx *dettaintCtx) visitSinks(n ast.Node, env varFacts[taintVal], sink func(pos token.Pos, desc string, t taintVal)) {
	if sink == nil {
		return
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !isSel || !strings.EqualFold(sel.Sel.Name, "seed") || i >= len(as.Rhs) {
				continue
			}
			sink(as.Pos(), "seed field "+exprString(lhs), cx.taintOf(as.Rhs[i], env))
		}
	}
	walkShallow(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.CompositeLit:
			for _, elt := range sub.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && strings.EqualFold(key.Name, "seed") {
					sink(kv.Pos(), "seed field "+key.Name, cx.taintOf(kv.Value, env))
				}
			}
		case *ast.CallExpr:
			if method, isEnv := envMethodCall(cx.pass.Info, sub); isEnv {
				var t taintVal
				for _, arg := range sub.Args {
					t = t.or(cx.taintOf(arg, env))
				}
				sink(sub.Pos(), "the congest wire (Env."+method+")", t)
				return true
			}
			fn := calleeFunc(cx.pass.Info, sub)
			if fn == nil {
				return true
			}
			if _, isEncoder := cx.encoders[fn]; isEncoder || isCongestEncoderCall(fn) {
				var t taintVal
				for _, arg := range sub.Args {
					t = t.or(cx.taintOf(arg, env))
				}
				sink(sub.Pos(), "wire encoder "+fn.Name(), t)
				return true
			}
			if desc, isSeed := rngSeedCall(fn); isSeed {
				var t taintVal
				for _, arg := range sub.Args {
					t = t.or(cx.taintOf(arg, env))
				}
				sink(sub.Pos(), desc, t)
				return true
			}
			// One-level summaries: passing a tainted argument to a local
			// function that forwards it to a sink is a finding at this call.
			if _, local := cx.cg.decls[fn]; local {
				s := cx.summaries[fn]
				if s == nil || s.sinkMask == 0 {
					return true
				}
				var t taintVal
				for i, arg := range sub.Args {
					if i < 62 && s.sinkMask&(1<<uint(i)) != 0 {
						t = t.or(cx.taintOf(arg, env))
					}
				}
				sink(sub.Pos(), s.sinkDesc+" (via "+fn.Name()+")", t)
			}
		}
		return true
	})
}

// isCongestEncoderCall recognizes the congest wire encoders when called
// from a sibling protocol package (they are //flvet:encoder in their own
// package, invisible to this pass's directive table).
func isCongestEncoderCall(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "dfl/internal/congest" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "EncodeKind")
}

// rngSeedCall recognizes RNG seeding: math/rand(/v2) generator
// constructors and the (*rand.Rand).Seed method.
func rngSeedCall(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if fn.Name() == "Seed" {
			return "an RNG seed (" + fn.FullName() + ")", true
		}
		return "", false
	}
	if seededConstructors[fn.Name()] || fn.Name() == "Seed" {
		return "an RNG seed (" + fn.Pkg().Name() + "." + fn.Name() + ")", true
	}
	return "", false
}

// summarize computes fn's taint summary with parameters seeded.
func (cx *dettaintCtx) summarize(fn *types.Func) *taintSummary {
	s := &taintSummary{}
	cx.scanFn(fn, true,
		func(_ token.Pos, desc string, t taintVal) {
			params := t.mask &^ taintInherent
			if params != 0 && s.sinkMask == 0 {
				s.sinkDesc = desc
			}
			s.sinkMask |= params
		},
		func(t taintVal) {
			s.returnMask |= t.mask
			if s.returnReason == "" && t.mask&taintInherent != 0 {
				s.returnReason = t.reason
			}
		})
	return s
}

// reportFn runs the reporting pass: parameters unseeded, so only inherent
// taint survives to a sink.
func (cx *dettaintCtx) reportFn(fn *types.Func) {
	cx.scanFn(fn, false, func(pos token.Pos, desc string, t taintVal) {
		if t.mask&taintInherent == 0 || cx.reported[pos] {
			return
		}
		if _, exempt := cx.pass.directiveAt(pos, "nondet"); exempt {
			return
		}
		cx.reported[pos] = true
		reason := t.reason
		if reason == "" {
			reason = "a nondeterministic source"
		}
		cx.pass.Reportf(pos, "%s flows into %s; protocol output must be a pure function of Config.Seed", reason, desc)
	}, nil)
}
