// Package boundarymisuse claims the transport boundary from a package
// whose import path does not contain "transport": the directive itself is
// the finding, and it exempts nothing — the nondeterminism below is still
// reported.
//
//flvet:transport nice try // want `only transport adapter packages .* may declare the nondeterminism boundary`
package boundarymisuse

import "time"

func clock() {
	_ = time.Now() // want `time\.Now: wall-clock`
}
