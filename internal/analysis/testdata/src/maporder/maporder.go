// Package maporder seeds violations (and legitimate patterns) for the
// maporder analyzer's golden test.
package maporder

import (
	"sort"

	"dfl/internal/congest"
)

func leaks(m map[int]int, out []int, ch chan int, sink map[int]int) []int {
	var acc []int
	for k := range m { // want `appends to a slice`
		acc = append(acc, k)
	}
	for k, v := range m { // want `writes through a slice index`
		out[k] = v
	}
	for k := range m { // want `sends on a channel`
		ch <- k
	}
	total := 0
	for _, v := range m { // order-insensitive integer reduction: allowed
		total += v
	}
	for k, v := range m { // per-key map writes: allowed
		sink[k] = v
	}
	out[0] = total
	return acc
}

func sorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//flvet:ordered the keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sends(env *congest.Env, live map[int]bool, payload []byte) {
	for v := range live { // want `stages a message via Env\.Send`
		env.Send(v, payload)
	}
	for _, v := range env.Neighbors() { // slice iteration: allowed
		if live[v] {
			env.Send(v, payload)
		}
	}
}
