// Package poolonly seeds violations for the poolonly analyzer's golden
// test. This file plays the role of internal/congest/shard.go: the one
// sanctioned goroutine spawn site.
package poolonly

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker() // allowed: shard.go owns goroutine creation
	}
}

func (p *pool) worker() { p.wg.Done() }
