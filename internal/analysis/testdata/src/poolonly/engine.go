package poolonly

func runRound(work func()) {
	go work() // want `bare go statement outside pool\.go`
	done := make(chan struct{})
	go func() { // want `bare go statement outside pool\.go`
		work()
		close(done)
	}()
	<-done
}
