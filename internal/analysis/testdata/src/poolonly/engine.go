package poolonly

func runRound(work func()) {
	go work() // want `bare go statement outside shard\.go`
	done := make(chan struct{})
	go func() { // want `bare go statement outside shard\.go`
		work()
		close(done)
	}()
	<-done
}
