// Package bitbudget seeds violations (and legitimate encoder shapes) for
// the bitbudget analyzer's golden test.
package bitbudget

import "encoding/binary"

const kindA = 0x01

// goodVarint is the canonical shape: reset, kind byte, one varint.
// 1 + 10 bytes = 88 bits.
//
//flvet:encoder maxbits=88
func goodVarint(buf []byte, v int64) []byte {
	buf = append(buf[:0], kindA)
	buf = binary.AppendVarint(buf, v)
	return buf
}

// goodHelper delegates to a package-local helper; the call-graph summary
// carries the helper's +3 bound back: (0 + 3 + 10) bytes = 104 bits.
//
//flvet:encoder maxbits=104
func goodHelper(buf []byte, v uint64) []byte {
	buf = buf[:0]
	buf = appendHeader(buf)
	buf = binary.AppendUvarint(buf, v)
	return buf
}

func appendHeader(buf []byte) []byte {
	return append(buf, kindA, 0x00, 0xff)
}

// goodBranch joins control-flow paths at their maximum: 4 bytes = 32 bits.
//
//flvet:encoder maxbits=32
func goodBranch(buf []byte, wide bool) []byte {
	buf = buf[:0]
	if wide {
		buf = append(buf, 1, 2, 3, 4)
	} else {
		buf = append(buf, 1)
	}
	return buf
}

// goodFixed returns a constant-size literal: 2 bytes = 16 bits.
//
//flvet:encoder maxbits=16
func goodFixed(status byte) []byte {
	return []byte{kindA, status}
}

// overBudget is structurally bounded but exceeds its declared budget:
// 1 + 10 + 10 bytes = 168 bits > 88.
//
//flvet:encoder maxbits=88
func overBudget(buf []byte, a, b int64) []byte {
	buf = append(buf[:0], kindA)
	buf = binary.AppendVarint(buf, a)
	buf = binary.AppendVarint(buf, b)
	return buf // want `payload can reach 168 bits, exceeding declared maxbits=88`
}

// loopGrowth appends inside a loop with no static trip bound.
//
//flvet:encoder maxbits=88
func loopGrowth(buf []byte, vals []int64) []byte {
	buf = buf[:0]
	for _, v := range vals {
		buf = binary.AppendVarint(buf, v) // want `append to buf inside a loop grows the payload unboundedly`
	}
	return buf
}

// unboundedArg splices a caller-controlled slice of unknown length.
//
//flvet:encoder maxbits=88
func unboundedArg(buf, extra []byte) []byte {
	buf = append(buf[:0], kindA)
	buf = append(buf, extra...) // want `buf is assigned a value with no static size bound`
	return buf
}

// runtimeMake sizes its scratch buffer at run time.
//
//flvet:encoder maxbits=88
func runtimeMake(buf []byte, n int) []byte {
	tmp := make([]byte, n) // want `tmp is assigned a value with no static size bound`
	copy(tmp, buf)
	return append(buf[:0], tmp...)
}

// escaped shows the //flvet:bounded escape: the loop is unbounded to the
// analyzer, but the caller contract caps the trip count, and the one
// annotation covers the blessed value through to the return.
//
//flvet:encoder maxbits=88
func escaped(buf []byte, quads []uint32) []byte {
	buf = append(buf[:0], kindA)
	for _, q := range quads {
		//flvet:bounded callers pass at most 2 quads: 1 + 2*5 bytes = 88 bits
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	return buf
}
