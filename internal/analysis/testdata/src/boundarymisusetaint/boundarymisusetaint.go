// Package boundarymisusetaint is the dettaint side of the boundary-misuse
// golden: a non-transport package claiming the transport boundary gets the
// directive reported and keeps full taint checking.
//
//flvet:transport nope // want `only transport adapter packages .* may declare the nondeterminism boundary`
package boundarymisusetaint

import "time"

type config struct {
	Seed int64
}

func clockSeed() config {
	return config{Seed: time.Now().UnixNano()} // want `wall-clock read time\.Now flows into seed field Seed`
}
