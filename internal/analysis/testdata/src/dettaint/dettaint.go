// Package dettaint seeds violations (and legitimate flows) for the
// dettaint analyzer's golden test, using the real congest.Env so the
// structural Send/Broadcast matcher is exercised.
package dettaint

import (
	"math/rand"
	"os"
	"runtime"
	"time"

	"dfl/internal/congest"
)

// direct: a wall-clock value reaches the wire through an assignment chain.
func direct(env *congest.Env, buf []byte) {
	now := time.Now().UnixNano()
	to := int(now % 8)
	env.Send(1, buf)     // untainted payload and destination: allowed
	env.Send(to, buf)    // want `wall-clock read time\.Now flows into the congest wire \(Env\.Send\)`
}

// mapOrder: iteration-order taint is the deep version of maporder — the
// loop shape is innocent, the accumulated value is not.
func mapOrder(env *congest.Env, weights map[int]int) {
	acc := 0
	for _, w := range weights {
		acc ^= w << uint(acc%7) // order-dependent fold
	}
	env.Broadcast([]byte{byte(acc)}) // want `map iteration order flows into the congest wire \(Env\.Broadcast\)`

	sum := 0
	//flvet:ordered integer addition commutes; the sum is identical for every visit order
	for _, w := range weights {
		sum += w
	}
	env.Send(0, []byte{byte(sum)}) // blessed by the ordered directive: allowed
}

// seeds: host state must not seed RNGs; a fully constant seed is fine.
func seeds() {
	src := rand.NewSource(int64(runtime.NumCPU())) // want `host-dependent runtime query runtime\.NumCPU flows into an RNG seed \(rand\.NewSource\)`
	_ = src
	clean := rand.New(rand.NewSource(42)) // constant seed: allowed
	_ = clean
}

// config mirrors the engine's seeded-configuration idiom.
type config struct{ Seed int64 }

func nowNano() int64 { return time.Now().UnixNano() }

// seedFields: taint crosses one call level via nowNano's return summary,
// then lands in Seed-named state both by assignment and composite literal.
func seedFields() config {
	var c config
	c.Seed = nowNano()            // want `wall-clock read time\.Now flows into seed field c\.Seed`
	d := config{Seed: nowNano()}  // want `wall-clock read time\.Now flows into seed field Seed`
	_ = c
	return d
}

// sendVia: the sink is one call level down; the finding surfaces at the
// call site that introduces the taint.
func sendVia(env *congest.Env, b byte) {
	env.Broadcast([]byte{b})
}

func caller(env *congest.Env) {
	sendVia(env, byte(time.Now().Unix())) // want `wall-clock read time\.Now flows into the congest wire \(Env\.Broadcast\) \(via sendVia\)`
	sendVia(env, 7)                       // untainted argument: allowed
}

// registry is written outside init, so reads of it are unsynchronized
// shared state as far as the determinism contract is concerned.
var registry = map[string]int{}

func register(k string) { registry[k] = 1 }

func leak(env *congest.Env, buf []byte) {
	env.Send(registry["x"], buf) // want `read of mutable package-level state registry flows into the congest wire \(Env\.Send\)`
}

// frozenReg carries the immutability argument, so reads stay clean.
//
//flvet:frozen written only during package init via freezeWrite
var frozenReg = map[string]int{}

func freezeWrite(k string) { frozenReg[k] = 2 }

func cleanRead(env *congest.Env, buf []byte) {
	env.Send(frozenReg["x"], buf) // frozen registry: allowed
}

// encTiny is a local wire encoder: its arguments are sinks too.
//
//flvet:encoder maxbits=16
func encTiny(buf []byte, v byte) []byte { return append(buf[:0], 0x7, v) }

func encLeak(buf []byte) []byte {
	return encTiny(buf, byte(os.Getpid()+runtime.NumGoroutine())) // want `host-dependent runtime query runtime\.NumGoroutine flows into wire encoder encTiny`
}

// escaped: the //flvet:nondet escape accepts a justified flow.
func escaped(env *congest.Env) {
	//flvet:nondet trace beacon carries a timestamp by design; receivers ignore it for protocol state
	env.Broadcast([]byte{byte(time.Now().Unix())}) // escaped by the directive above
}
