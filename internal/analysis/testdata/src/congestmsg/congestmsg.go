// Package congestmsg seeds violations (and legitimate patterns) for the
// congestmsg analyzer's golden test.
package congestmsg

import (
	"encoding/binary"

	"dfl/internal/congest"
)

const kindPing = 'P'

var payloadAck = []byte{'A'}        // fixed-size literal: a registered payload var
var payloadBad = make([]byte, 0, 8) // runtime-sized: not bounded

// encodePing renders one ping value: kind byte plus a varint.
//
//flvet:encoder maxbits=88
func encodePing(buf []byte, v int64) []byte {
	buf = append(buf[:0], kindPing)
	return binary.AppendVarint(buf, v)
}

// badEncoder claims to be an encoder but declares no size bound.
//
//flvet:encoder
func badEncoder(buf []byte) []byte { return buf } // want `needs a positive maxbits`

// notBytes claims a bound but does not produce wire bytes.
//
//flvet:encoder maxbits=16
func notBytes() int { return 0 } // want `must return \[\]byte`

type scratch struct{ buf []byte }

func sends(env *congest.Env, s *scratch, data []byte, n int) {
	env.Send(0, encodePing(nil, 42)) // direct encoder call: allowed
	s.buf = encodePing(s.buf, 7)
	env.Send(1, s.buf) // field assigned only from an encoder: allowed
	env.Broadcast(payloadAck)
	env.Send(2, []byte{kindPing, 0}) // fixed-size literal: allowed
	p := encodePing(nil, 9)
	env.Send(3, p[:1])        // slice of a bounded value: allowed
	env.Send(4, data)         // want `not traceable`
	env.Broadcast(payloadBad) // want `not traceable`
	raw := make([]byte, n)
	env.Send(5, raw)            // want `not traceable`
	env.Send(6, append(raw, 1)) // want `not traceable`
	//flvet:bounded callers cap len(data) at 8 before reaching this path
	env.Send(7, data) // exempted by the directive above
}

func tainted(env *congest.Env, n int) {
	q := encodePing(nil, 1)
	q = make([]byte, n) // reassignment from an unbounded source taints q
	env.Send(0, q)      // want `not traceable`
}

// wire is a registered payload record; unbounded fields need size notes.
//
//flvet:payload
type wire struct {
	Kind byte
	Val  int64
	Tag  [4]byte
	Name string //flvet:size=256 interned protocol atom, at most 32 bytes
	Blob []byte // want `unbounded type \[\]byte`
	Refs []int  // want `unbounded type \[\]int`
}
