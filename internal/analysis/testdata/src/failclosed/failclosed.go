// Package failclosed seeds violations (and legitimate patterns) for the
// failclosed analyzer's golden test.
package failclosed

// decodeNaked indexes the payload with no length check at all: the
// canonical fail-open decoder.
func decodeNaked(p []byte) byte {
	return p[0] // want `index p\[0\] without a preceding len\(p\) guard`
}

// decodeGuarded is the idiom the analyzer wants: reject short frames first.
func decodeGuarded(p []byte) (byte, bool) {
	if len(p) < 2 {
		return 0, false
	}
	return p[1], true
}

// decodeShortCircuit guards and indexes in one boolean expression; the len
// call precedes the index, so short-circuit evaluation makes it safe.
func decodeShortCircuit(p []byte) bool {
	return len(p) == 1 && p[0] == 'k'
}

// decodeLateGuard checks the length only after the damage is done.
func decodeLateGuard(p []byte) byte {
	b := p[2] // want `index p\[2\] without a preceding len\(p\) guard`
	if len(p) < 3 {
		return 0
	}
	return b
}

// decodeRange observes the length by ranging; indexing after is fine.
func decodeRange(p []byte) int {
	n := 0
	for i := range p {
		n += int(p[i])
	}
	return n
}

// decodeField guards one field expression but indexes another: the guard
// must match the indexed expression exactly.
type frame struct{ head, body []byte }

func decodeField(f frame) byte {
	if len(f.head) == 0 {
		return 0
	}
	_ = f.head[0]
	return f.body[0] // want `index f\.body\[0\] without a preceding len\(f\.body\) guard`
}

// decodeExempt is bounds-safe for an out-of-band reason and says so.
func decodeExempt(p []byte) byte {
	//flvet:guarded caller hands fixed 4-byte frames
	return p[3]
}

// writeByte stores into unguarded payload bytes: stores panic on short
// frames exactly like loads.
func writeByte(p []byte) {
	p[0] = 1 // want `index p\[0\] without a preceding len\(p\) guard`
}

// notBytes indexes a non-byte slice; other analyzers' territory.
func notBytes(v []int) int {
	return v[0]
}
