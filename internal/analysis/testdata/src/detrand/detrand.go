// Package detrand seeds violations (and legitimate patterns) for the
// detrand analyzer's golden test.
package detrand

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func globals(seeded *rand.Rand) {
	_ = rand.Intn(10)                            // want `global math/rand\.Intn`
	rand.Shuffle(3, func(i, j int) {})           // want `global math/rand\.Shuffle`
	_ = rand.Float64()                           // want `global math/rand\.Float64`
	rand.Seed(42)                                // want `global math/rand\.Seed`
	_ = rand.New(rand.NewSource(1))              // constructors build seeded state: allowed
	_ = seeded.Intn(10)                          // methods on seeded state: allowed
	_ = rand.NewZipf(seeded, 1.1, 1.0, 100)      // constructor taking the seeded stream: allowed
}

func clocks() {
	_ = time.Now()                     // want `time\.Now: wall-clock`
	time.Sleep(time.Millisecond)       // want `time\.Sleep: wall-clock`
	_ = time.Since(time.Time{})        // want `time\.Since: wall-clock`
	_ = 3 * time.Second                // duration arithmetic: allowed
	//flvet:nondet timestamp feeds a log line only, never protocol state
	_ = time.Now() // exempted by the directive above
}

func hosts() {
	_ = runtime.NumCPU()       // want `runtime\.NumCPU: per-host input`
	_ = runtime.NumGoroutine() // want `runtime\.NumGoroutine: per-host input`
	_ = os.Getenv("DFL_DEBUG") // want `os\.Getenv: per-host input`
	_, _ = os.LookupEnv("X")   // want `os\.LookupEnv: per-host input`
	_ = runtime.GOMAXPROCS(0)  // worker-count sizing: I5 keeps output shard-count-invariant
	//flvet:nondet debug toggle only, never protocol state
	_ = os.Getenv("DFL_TRACE") // exempted by the directive above
}

func selects(ch1, ch2 chan int) {
	select { // want `select with 2 cases`
	case <-ch1:
	case <-ch2:
	}
	select { // want `select with 2 cases`
	case <-ch1:
	default:
	}
	select { // single-case select is a plain blocking receive: allowed
	case <-ch1:
	}
}
