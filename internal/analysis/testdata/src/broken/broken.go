// Package broken deliberately fails type checking: the cmd/flvet
// regression test asserts a loader failure in a multi-package run names
// this package and exits with status 2 (operational error), not 1
// (findings).
package broken

func oops() int { return "not an int" }
