package hotmap

// Cold file (report.go is not in the hotmap file set): maps are fine here.

func buildReport(ids []int) map[int]bool {
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}
