package hotmap

// Hot-path file (engine.go is in the hotmap file set): every map
// allocation must be flagged unless exempted as a cold path.

type env struct {
	sentTo map[int]uint64
}

func newEnvs(n int) []*env {
	envs := make([]*env, n) // slice make: fine
	for i := range envs {
		envs[i] = &env{
			sentTo: make(map[int]uint64), // want `map allocation in engine hot-path file engine\.go`
		}
	}
	return envs
}

type gauge map[string]int64

func setup() {
	_ = make(map[string]bool, 8) // want `map allocation in engine hot-path file engine\.go`
	_ = map[int]int{1: 2}        // want `map allocation in engine hot-path file engine\.go`
	_ = make(gauge)              // want `map allocation in engine hot-path file engine\.go`

	//flvet:coldpath one-time run setup, never touched per round
	_ = make(map[int]int, 4)

	_ = map[string]string{"a": "b"} //flvet:coldpath config table
}

func shadowedMake() {
	make := func(m map[int]int) map[int]int { return m }
	_ = make(nil) // user-defined make: not an allocation of a map by the builtin
}

func slicesAndArrays() {
	_ = make([]int, 10)
	_ = make(chan int)
	_ = []int{1, 2, 3}
}
