// Package transportclean stands in for a real-network adapter in the
// transport boundary golden test: its import path contains "transport" and
// its package doc declares the boundary, so detrand and dettaint must stay
// entirely silent even though every construct below would be a violation in
// protocol code.
//
//flvet:transport timers, deadlines and jitter are the point of an adapter
package transportclean

import (
	"math/rand"
	"time"
)

type config struct {
	Seed int64
}

func timers(ch, done chan int) {
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		select { // multi-case select: allowed behind the boundary
		case <-ch:
		case <-done:
			return
		}
	}
}

func jitter() time.Duration {
	return time.Duration(rand.Intn(5)) * time.Millisecond
}

func clockSeed() config {
	// Even a clock-seeded config is the adapter's own business: nothing
	// here is protocol state.
	return config{Seed: time.Now().UnixNano()}
}
