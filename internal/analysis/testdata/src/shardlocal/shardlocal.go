// Package shardlocal seeds violations (and legitimate shard-owned writes)
// for the shardlocal analyzer's golden test. The pool mirrors the engine's
// shardPool shape: shared id-indexed slices plus per-shard private state.
package shardlocal

type message struct{ To int }

type state struct {
	members []int
	outbox  [][]message
	count   int
}

type pool struct {
	halted  []bool
	inboxes [][]message
	shards  []*state
	round   int
}

// worker is the compute-phase entry: everything reachable from here may
// only write shard-w-owned state.
//
//flvet:shardworker
func (p *pool) worker(w int) {
	s := p.shards[w] // indexing a pool field with the own index: local handle
	for _, id := range s.members {
		p.halted[id] = false // member ids index shard-owned ranges: allowed
	}
	s.count++                 // write through the local handle: allowed
	s.outbox[0] = s.outbox[0][:0] // local handle: any index is fine
	scratch := make([]int, 4)
	scratch[3] = w // plain local state: allowed

	other := w + 1
	p.halted[other] = true    // want `write to p\.halted indexed by other, which is not provably in this worker's shard`
	p.shards[other].count = 0 // want `write through p\.shards\[other\], which may reference another shard's state`
	p.round = 1               // want `write to shared pool state p\.round`
	for _, t := range p.shards {
		t.count++ // want `write through t, which may reference another shard's state`
	}

	p.helper(w)     // own index crosses the call boundary
	p.sneaky(other) // non-local index crosses the call boundary

	q := p.shards[other]
	q.reset() // foreign handle crosses the call boundary

	p.merge(w)

	//flvet:shardlocal scheduling beacon, torn reads tolerated by design
	p.round = 2 // escaped by the directive above
}

// helper inherits the own-index fact from its call site, so its pool write
// is provably local.
func (p *pool) helper(w int) {
	p.halted[w] = true // allowed: w is the caller's own shard index
}

// sneaky receives an index with no locality proof.
func (p *pool) sneaky(i int) {
	p.inboxes[i] = nil // want `write to p\.inboxes indexed by i, which is not provably in this worker's shard`
}

// reset writes through its receiver; flagged only because its one call
// site passes another shard's state.
func (s *state) reset() {
	s.count = 0 // want `write through s, which may reference another shard's state`
}

// merge is the blessed cross-shard phase.
//
//flvet:merge drains every shard's outbox after the barrier
func (p *pool) merge(w int) {
	for _, s := range p.shards {
		for _, m := range s.outbox[w] {
			p.inboxes[m.To] = append(p.inboxes[m.To], m)
		}
	}
}
