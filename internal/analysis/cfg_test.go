package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// The dataflow analyzers are only as sound as the CFG under them, so the
// graph builder gets direct structural tests: block shapes, cycle
// marking, RPO, and the solver's no-aliasing contract.

// parseBody wraps src in a function and returns its parsed body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f(c bool, xs []int) {\n" + src + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the blocks reachable from entry.
func reachableBlocks(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(c.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 1\nx++\n_ = x"))
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
	if !reachableBlocks(cfg)[cfg.Exit] {
		t.Error("exit not reachable from entry")
	}
	for _, b := range cfg.Blocks {
		if b.InCycle() {
			t.Errorf("block %d marked in-cycle in straight-line code", b.Index)
		}
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 0\nif c {\nx = 1\n} else {\nx = 2\n}\n_ = x"))
	// The branch blocks must reconverge: some block has two predecessors.
	joined := false
	for _, b := range cfg.Blocks {
		if len(b.Preds) >= 2 {
			joined = true
		}
		if b.InCycle() {
			t.Errorf("block %d marked in-cycle in branch-only code", b.Index)
		}
	}
	if !joined {
		t.Error("if/else arms never join")
	}
}

func TestCFGForLoopCycle(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 0\nfor c {\nx++\n}\n_ = x"))
	var cyclic, acyclic int
	for b := range reachableBlocks(cfg) {
		if b.InCycle() {
			cyclic++
		} else {
			acyclic++
		}
	}
	if cyclic < 2 {
		t.Errorf("want loop head and body in-cycle, got %d cyclic blocks", cyclic)
	}
	if acyclic < 2 {
		t.Errorf("entry and after-loop code must stay out of the cycle, got %d acyclic blocks", acyclic)
	}
	if cfg.Exit.InCycle() {
		t.Error("exit block marked in-cycle")
	}
}

func TestCFGRangeHeader(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "s := 0\nfor _, v := range xs {\ns += v\n}\n_ = s"))
	var head *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*RangeHeader); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no RangeHeader node emitted for a range loop")
	}
	if !head.InCycle() {
		t.Error("range header block not marked in-cycle")
	}
	// The header is the back-edge target: one of its predecessors must be
	// a cyclic block (the body).
	backEdge := false
	for _, p := range head.Preds {
		if p.InCycle() {
			backEdge = true
		}
	}
	if !backEdge {
		t.Error("range header has no back edge from the loop body")
	}
}

func TestCFGBreakStopsCycle(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "for {\nif c {\nbreak\n}\n}\n_ = c"))
	if !reachableBlocks(cfg)[cfg.Exit] {
		t.Error("break out of for{} must make the exit reachable")
	}
}

func TestRPOStartsAtEntryAndCoversReachable(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 0\nfor c {\nif x > 1 {\nx = 0\n}\nx++\n}\n_ = x"))
	rpo := cfg.RPO()
	if len(rpo) == 0 || rpo[0] != cfg.Entry {
		t.Fatal("RPO must begin with the entry block")
	}
	seen := map[*Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Errorf("block %d appears twice in RPO", b.Index)
		}
		seen[b] = true
	}
	for b := range reachableBlocks(cfg) {
		if !seen[b] {
			t.Errorf("reachable block %d missing from RPO", b.Index)
		}
	}
}

// TestForwardFlowDoesNotAliasStates pins the solver's cloning contract:
// transfer may mutate its argument, and the stored block-entry states must
// not change underneath it. (A regression here poisons every downstream
// report pass with post-states.)
func TestForwardFlowDoesNotAliasStates(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 1\n_ = x"))
	entry := map[string]int{}
	join := func(dst, src map[string]int) (map[string]int, bool) {
		if dst == nil {
			c := map[string]int{}
			for k, v := range src {
				c[k] = v
			}
			return c, true
		}
		changed := false
		for k, v := range src {
			if dst[k] < v {
				dst[k] = v
				changed = true
			}
		}
		return dst, changed
	}
	clone := func(m map[string]int) map[string]int {
		c := map[string]int{}
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	transfer := func(b *Block, st map[string]int) map[string]int {
		st["visited"] += len(b.Nodes) // deliberately mutates its argument
		return st
	}
	states := forwardFlow(cfg, entry, join, clone, transfer, nil)
	if got := states[cfg.Entry]["visited"]; got != 0 {
		t.Errorf("entry in-state mutated by transfer: visited=%d, want 0", got)
	}
	if got := states[cfg.Exit]["visited"]; got != 2 {
		t.Errorf("exit in-state = %d nodes, want 2", got)
	}
}

// TestForwardFlowLoopFixpoint checks that loop states converge: a counter
// capped by the transfer function must reach its cap at the loop head, not
// oscillate or stop early.
func TestForwardFlowLoopFixpoint(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 0\nfor c {\nx++\n}\n_ = x"))
	const cap = 50
	join := func(dst, src map[string]int) (map[string]int, bool) {
		if dst == nil {
			c := map[string]int{}
			for k, v := range src {
				c[k] = v
			}
			return c, true
		}
		changed := false
		for k, v := range src {
			if dst[k] < v {
				dst[k] = v
				changed = true
			}
		}
		return dst, changed
	}
	clone := func(m map[string]int) map[string]int {
		c := map[string]int{}
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	transfer := func(b *Block, st map[string]int) map[string]int {
		if b.InCycle() && st["n"] < cap {
			st["n"]++
		}
		return st
	}
	states := forwardFlow(cfg, map[string]int{}, join, clone, transfer, nil)
	if got := states[cfg.Exit]["n"]; got != cap {
		t.Errorf("loop fixpoint stopped at n=%d, want saturation at %d", got, cap)
	}
}
