package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the middle of the dataflow layer: a generic forward
// worklist solver over the CFG, plus the variable-fact state shared by the
// taint-style analyses (dettaint's nondeterminism taint and shardlocal's
// locality facts). bitbudget reuses the same solver with its own numeric
// lattice.

// forwardFlow runs a forward dataflow over cfg to fixpoint and returns the
// stable entry state of every reachable block.
//
//   - entry is the fact at the function entry.
//   - join merges a predecessor's out-fact into an accumulated in-fact and
//     reports whether the accumulated fact changed; dst may be nil (bottom),
//     in which case join must return a copy of src.
//   - clone copies a fact; the solver hands transfer a clone of the stored
//     in-state so transfer may mutate its argument freely.
//   - transfer computes a block's out-fact from its (cloned) in-fact.
//   - widen, when non-nil, is applied to a block's freshly joined in-fact
//     after that block's state has changed more than maxChanges times; it
//     must force the fact to a fixpoint-safe top so unbounded lattices
//     (bitbudget's byte counts) terminate.
func forwardFlow[F any](
	cfg *CFG,
	entry F,
	join func(dst F, src F) (F, bool),
	clone func(F) F,
	transfer func(*Block, F) F,
	widen func(F) F,
) map[*Block]F {
	const maxChanges = 3
	rpo := cfg.RPO()
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	in := make(map[*Block]F, len(rpo))
	changes := make(map[*Block]int, len(rpo))
	var zero F
	in[cfg.Entry] = entry

	inQueue := make(map[*Block]bool, len(rpo))
	queue := append([]*Block(nil), rpo...)
	for _, b := range rpo {
		inQueue[b] = true
	}
	for len(queue) > 0 {
		// Pop the queued block earliest in RPO; near-linear on reducible
		// graphs and correct on any graph.
		best := 0
		for i := 1; i < len(queue); i++ {
			if order[queue[i]] < order[queue[best]] {
				best = i
			}
		}
		b := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		inQueue[b] = false

		st, ok := in[b]
		if !ok {
			continue // unreachable or not yet fed by any predecessor
		}
		out := transfer(b, clone(st))
		for _, s := range b.Succs {
			cur, seen := in[s]
			if !seen {
				cur = zero
			}
			merged, changed := join(cur, out)
			if !seen || changed {
				changes[s]++
				if widen != nil && changes[s] > maxChanges {
					merged = widen(merged)
				}
				in[s] = merged
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return in
}

// varFacts is the shared map-shaped fact: one small value per tracked
// *types.Var. The zero map is bottom.
type varFacts[T comparable] map[*types.Var]T

func (f varFacts[T]) clone() varFacts[T] {
	c := make(varFacts[T], len(f))
	for k, v := range f { //flvet:ordered per-key copy into a map, order-free
		c[k] = v
	}
	return c
}

// joinUnion is the may-join: a var keeps a fact if any predecessor had one
// (first writer wins on conflicting values, which taint reasons tolerate).
func joinUnion[T comparable](dst, src varFacts[T]) (varFacts[T], bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k, v := range src { //flvet:ordered per-key union into a map, order-free
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

// joinIntersect is the must-join: a var keeps a fact only if every
// predecessor agrees on it exactly.
func joinIntersect[T comparable](dst, src varFacts[T]) (varFacts[T], bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k, v := range dst { //flvet:ordered per-key intersection, order-free
		if sv, ok := src[k]; !ok || sv != v {
			delete(dst, k)
			changed = true
		}
	}
	return dst, changed
}

// lhsVar resolves an assignment target to the *types.Var it binds, for
// plain identifier targets. Selector/index targets return nil — the
// analyses model those separately.
func lhsVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// useVar resolves an identifier expression to the variable it reads.
func useVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// rangeVars returns the key and value loop variables of a range statement
// (nil where absent or blank).
func rangeVars(info *types.Info, r *ast.RangeStmt) (key, value *types.Var) {
	if r.Key != nil {
		key = lhsVar(info, r.Key)
	}
	if r.Value != nil {
		value = lhsVar(info, r.Value)
	}
	return key, value
}

// paramIndex returns the position of v among fn's declared parameters, or
// -1. The receiver is not a parameter.
func paramIndex(fd *ast.FuncDecl, info *types.Info, v *types.Var) int {
	if fd.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == v {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// receiverVar returns the declared receiver variable of a method, or nil.
func receiverVar(fd *ast.FuncDecl, info *types.Info) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}
