package dfl_test

import (
	"bytes"
	"sync"
	"testing"

	"dfl"
)

// TestPublicAPIEndToEnd drives the façade the way the README quickstart
// does: generate, bound, solve distributed + sequential, validate, and
// round-trip through the text format.
func TestPublicAPIEndToEnd(t *testing.T) {
	inst, err := dfl.Uniform{M: 10, NC: 40}.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	st := dfl.Stats(inst)
	if st.M != 10 || st.NC != 40 {
		t.Fatalf("stats shape: %+v", st)
	}

	lb, err := dfl.LowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("lower bound = %d", lb)
	}

	sol, rep, err := dfl.SolveDistributed(inst, dfl.DistConfig{K: 16},
		dfl.WithSeed(1), dfl.WithParallel(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := dfl.Validate(inst, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost(inst) < lb {
		t.Fatalf("cost %d below LP bound %d", sol.Cost(inst), lb)
	}
	if rep.Net.Rounds != rep.Derived.TotalRounds {
		t.Fatalf("report rounds %d != derived %d", rep.Net.Rounds, rep.Derived.TotalRounds)
	}

	d, err := dfl.DeriveDistParams(inst, dfl.DistConfig{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalRounds != rep.Derived.TotalRounds {
		t.Fatalf("derive mismatch: %d vs %d", d.TotalRounds, rep.Derived.TotalRounds)
	}

	for name, solve := range map[string]func(*dfl.Instance) (*dfl.Solution, error){
		"greedy":     dfl.SolveGreedy,
		"greedyfast": dfl.SolveGreedyFast,
		"jv":         dfl.SolveJainVazirani,
		"jms":        dfl.SolveJMS,
		"mp":         dfl.SolveMettuPlaxton,
		"exact":      dfl.SolveExact,
		"cheapest":   dfl.SolveCheapestPerClient,
		"openall":    dfl.SolveOpenAll,
	} {
		s, err := solve(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := dfl.Validate(inst, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Cost(inst) < lb {
			t.Fatalf("%s cost %d below LP bound %d", name, s.Cost(inst), lb)
		}
	}

	polished, err := dfl.SolveLocalSearch(inst, sol, dfl.LocalSearchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if polished.Cost(inst) > sol.Cost(inst) {
		t.Fatal("local search worsened the distributed solution")
	}

	var buf bytes.Buffer
	if err := dfl.WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := dfl.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != inst.M() || back.NC() != inst.NC() || back.EdgeCount() != inst.EdgeCount() {
		t.Fatal("text round trip changed the instance")
	}

	// Solution round trip through the public API.
	var solBuf bytes.Buffer
	if err := dfl.WriteSolution(&solBuf, sol); err != nil {
		t.Fatal(err)
	}
	solBack, err := dfl.ReadSolution(&solBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := dfl.Validate(inst, solBack); err != nil {
		t.Fatal(err)
	}
	if solBack.Cost(inst) != sol.Cost(inst) {
		t.Fatal("solution round trip changed cost")
	}

	// Capacitated mode through the façade.
	capSol, _, err := dfl.SolveDistributedSoftCap(inst,
		dfl.DistConfig{K: 9, SoftCapacity: 3}, dfl.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := dfl.ValidateCap(inst, 3, capSol); err != nil {
		t.Fatal(err)
	}
	capGreedy, err := dfl.SolveSoftCapGreedy(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dfl.ValidateCap(inst, 3, capGreedy); err != nil {
		t.Fatal(err)
	}

	// Lossy mode + best-of through the façade.
	lossy, _, err := dfl.SolveDistributedBest(inst, dfl.DistConfig{K: 9}, 1, 3,
		dfl.WithLossyNetwork(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := dfl.Validate(inst, lossy); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIConstructors(t *testing.T) {
	inst, err := dfl.NewInstance("api", []int64{5, 7}, 2, []dfl.RawEdge{
		{Facility: 0, Client: 0, Cost: 1},
		{Facility: 1, Client: 1, Cost: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.M() != 2 || inst.NC() != 2 {
		t.Fatalf("shape (%d,%d)", inst.M(), inst.NC())
	}

	dense, err := dfl.NewDenseInstance("dense", []int64{5}, [][]int64{{3}})
	if err != nil {
		t.Fatal(err)
	}
	if dense.EdgeCount() != 1 {
		t.Fatal("dense constructor lost edges")
	}

	if _, err := dfl.GeneratorByName("euclidean", 5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := dfl.GeneratorByName("bogus", 5, 10); err == nil {
		t.Fatal("unknown family should fail")
	}
}

// TestPublicAPISharded drives the distributed-deployment surface: solve an
// instance shard-by-shard over the in-process reference transport, round-
// trip each fragment through its wire codec, assemble, and compare against
// the single-process solver on the same seed.
func TestPublicAPISharded(t *testing.T) {
	inst, err := dfl.Uniform{M: 8, NC: 32}.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dfl.DistConfig{K: 8}
	want, _, err := dfl.SolveDistributed(inst, cfg, dfl.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	const k = 3
	n := inst.M() + inst.NC()
	spans := dfl.SplitSpans(n, k)
	net, err := dfl.NewChanNetwork(n, spans)
	if err != nil {
		t.Fatal(err)
	}
	frags := make([]*dfl.Fragment, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frag, err := dfl.SolveShard(inst, cfg, spans[i], 3, net.Shard(i))
			if err != nil {
				errs[i] = err
				return
			}
			frags[i], errs[i] = dfl.DecodeShardFragment(frag.Encode(nil), inst.M(), inst.NC())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	sol, rep, err := dfl.AssembleShards(inst, cfg, frags)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost(inst) != want.Cost(inst) {
		t.Fatalf("sharded cost %d != single-process %d", sol.Cost(inst), want.Cost(inst))
	}
	if err := dfl.Certify(inst, sol, rep); err != nil {
		t.Fatal(err)
	}
}
