# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-race bench results quick-results examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-race:
	go test -race ./...

# One testing.B per evaluation artifact plus micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure (full size, ~15s) into results/.
results:
	go run ./cmd/flbench -out results

quick-results:
	go run ./cmd/flbench -quick -out results

examples:
	go run ./examples/quickstart
	go run ./examples/cdn
	go run ./examples/warehouse
	go run ./examples/sensornet
	go run ./examples/lossy

clean:
	rm -rf results test_output.txt bench_output.txt
