# Convenience targets; everything is plain `go` underneath.

.PHONY: all build check vet test test-race bench bench-engine results quick-results examples clean

all: build check

build:
	go build ./...

# The gate every change must pass: vet plus the full suite under the race
# detector (the pooled engine makes -race mandatory, not optional).
check: vet test-race

vet:
	go vet ./...

test:
	go test ./...

test-race:
	go test -race ./...

# One testing.B per evaluation artifact plus micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# Just the engine/protocol hot-path benchmarks (compare against BENCH_seed.json).
bench-engine:
	go test -run XXX -bench 'EngineRound|MakeOffer|DistributedSolve' -benchmem ./... 2>/dev/null | grep -E 'Benchmark|^ok' || true

# Regenerate every table and figure (full size, ~15s) into results/.
results:
	go run ./cmd/flbench -out results

quick-results:
	go run ./cmd/flbench -quick -out results

examples:
	go run ./examples/quickstart
	go run ./examples/cdn
	go run ./examples/warehouse
	go run ./examples/sensornet
	go run ./examples/lossy

clean:
	rm -rf results test_output.txt bench_output.txt
