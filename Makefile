# Convenience targets; everything is plain `go` underneath.

.PHONY: all build check vet lint sarif test test-race bench bench-engine perf-smoke soak soak-respawn soak-e17 results quick-results examples clean

all: build check

build:
	go build ./...

# The gate every change must pass: vet, the custom analyzer suite (plus
# its SARIF artifact), and the full tests under the race detector (the
# pooled engine makes -race mandatory, not optional).
check: vet lint sarif test-race

vet:
	go vet ./...

# flvet enforces the determinism, CONGEST, shard-locality, and
# memory-layout contracts statically: six syntactic analyzers plus the
# dataflow suite (bitbudget, shardlocal, dettaint) — see DESIGN.md
# "Static contracts". The committed baseline grandfathers known debt
# (currently empty); new findings still fail. cmd/flvet's own tests run
# the same suite, so `make test` regresses too if an analyzer fires.
lint:
	go run ./cmd/flvet -baseline flvet.baseline ./...

# Machine-readable copy of the same run for code-scanning upload; CI
# attaches it as an artifact.
sarif:
	go run ./cmd/flvet -format sarif -baseline flvet.baseline ./... > flvet.sarif

test:
	go test ./...

test-race:
	go test -race ./...

# One testing.B per evaluation artifact plus micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# Just the engine/protocol hot-path benchmarks (compare against
# BENCH_seed.json). The output filter must not swallow failures: capture
# the run first, propagate its exit status (printing the full output on
# error), and only then trim the noise.
bench-engine:
	@out=$$(go test -run XXX -bench 'EngineRound|MakeOffer|DistributedSolve' -benchmem ./... 2>&1) || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | grep -E 'Benchmark|^ok' || true

# CI allocation gate: quick engine runs that fail if any allocs/round row
# exceeds the bound. E13's T10 rows time whole runs, so their figure
# (~165 allocs/round at n=256 after the CSR/lazy-RNG layout overhaul;
# was ~400 before it) is dominated by per-run env setup amortized over
# 12 rounds; the 192 bound is that plus ~17% headroom. E16's T15 row
# measures the steady state at n=10^5 by differencing two runs on the
# same frozen graph — on the CSR + arena layout that differential is 0,
# so any reintroduced per-round allocation at scale trips the same
# bound immediately.
perf-smoke:
	go run ./cmd/flbench -quick -exp E13,E16,E18 -maxallocs 192

# Churn soak over the real UDP transport: build the fleet binaries, then
# run flnode fleets on loopback for 15s with 10% packet loss and one
# SIGKILLed shard per deployment, certifying every assembled result.
# Exits nonzero on any hang, assembly failure, or certification failure.
soak:
	go build -o bin/ ./cmd/flnode ./cmd/flsoak
	./bin/flsoak -duration 15s -chaos loss=0.1 -kill 1

# Recovery-rung soak: same churn, but victims checkpoint every round and
# are relaunched with -resume after each SIGKILL. A readmitted shard must
# end every run with zero exemptions in its span — a successful rejoin
# that still orphans clients fails the soak.
soak-respawn:
	go build -o bin/ ./cmd/flnode ./cmd/flsoak
	./bin/flsoak -duration 15s -chaos loss=0.1 -kill 1 -respawn

# The E17 kill-round sweep (masked-forever vs checkpoint+readmit) behind
# EXPERIMENTS.md's cost-degradation table.
soak-e17:
	go build -o bin/ ./cmd/flnode ./cmd/flsoak
	./bin/flsoak -e17 -seed 4

# Regenerate every table and figure (full size, ~15s) into results/.
results:
	go run ./cmd/flbench -out results

quick-results:
	go run ./cmd/flbench -quick -out results

examples:
	go run ./examples/quickstart
	go run ./examples/cdn
	go run ./examples/warehouse
	go run ./examples/sensornet
	go run ./examples/lossy

clean:
	rm -rf results bin test_output.txt bench_output.txt flvet.sarif
