package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dfl/internal/fl"
)

const testInstance = `ufl 2 3 t
f 0 10
f 1 4
e 0 0 1
e 0 1 2
e 0 2 9
e 1 1 1
e 1 2 2
`

func solve(t *testing.T, args ...string) string {
	t.Helper()
	var out, errBuf bytes.Buffer
	if err := run(args, strings.NewReader(testInstance), &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errBuf.String())
	}
	return out.String()
}

func TestRunDist(t *testing.T) {
	out := solve(t, "-algo", "dist", "-k", "4")
	for _, want := range []string{"instance:", "LP lower bound:", "dist", "rounds="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	out := solve(t, "-algo", "all", "-k", "4")
	for _, want := range []string{"dist", "greedy", "jv", "jms", "mp", "localsearch", "cheapest", "openall", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Exact cost on this instance is 18; it must appear on the exact line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "exact") && !strings.Contains(line, "cost=18") {
			t.Fatalf("exact line wrong: %q", line)
		}
	}
}

func TestRunShowSolution(t *testing.T) {
	out := solve(t, "-algo", "greedy", "-solution")
	if !strings.Contains(out, "open:") || !strings.Contains(out, "client 0 -> facility") {
		t.Fatalf("solution dump missing:\n%s", out)
	}
}

func TestRunSoftCap(t *testing.T) {
	out := solve(t, "-k", "4", "-cap", "1")
	if !strings.Contains(out, "dist-cap1") || !strings.Contains(out, "copies=") {
		t.Fatalf("capacitated output wrong:\n%s", out)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	a := solve(t, "-algo", "dist", "-k", "9", "-seed", "5")
	b := solve(t, "-algo", "dist", "-k", "9", "-seed", "5", "-parallel")
	// Strip the elapsed field before comparing.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if i := strings.Index(line, "elapsed="); i >= 0 {
				line = line[:i]
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(a) != strip(b) {
		t.Fatalf("parallel output differs:\n%s\nvs\n%s", a, b)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-algo", "nope"}, strings.NewReader(testInstance), &out, &errBuf); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := run([]string{"-in", "/no/such/file"}, strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run(nil, strings.NewReader("garbage"), &out, &errBuf); err == nil {
		t.Fatal("unparsable instance should fail")
	}
}

func TestRunSaveSolution(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.sol"
	var out, errBuf bytes.Buffer
	if err := run([]string{"-algo", "greedy", "-save", path}, strings.NewReader(testInstance), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sol, err := fl.ReadSolution(f)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := fl.Read(strings.NewReader(testInstance))
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Validate(inst, sol); err != nil {
		t.Fatalf("saved solution invalid: %v", err)
	}
}
