// Command flsolve runs one facility-location algorithm on one instance and
// prints the solution summary. The instance is read from a file or stdin in
// the text instance format (see flgen).
//
// Usage:
//
//	flgen -family euclidean -m 30 -nc 150 | flsolve -algo dist -k 16
//	flsolve -algo greedy -in instance.ufl -solution
//	flsolve -algo all -in instance.ufl
//	flsolve -algo dist -k 16 -cap 8 -in instance.ufl   # soft-capacitated
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dfl/internal/core"
	"dfl/internal/fl"
	"dfl/internal/lp"
	"dfl/internal/seq"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flsolve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo     = fs.String("algo", "dist", "algorithm: dist, greedy, jv, jms, mp, localsearch, exact, cheapest, openall, all")
		in       = fs.String("in", "-", "instance file ('-' for stdin)")
		k        = fs.Int("k", 16, "trade-off parameter for -algo dist")
		seed     = fs.Int64("seed", 1, "protocol seed for -algo dist")
		parallel = fs.Bool("parallel", false, "parallel simulator execution for -algo dist")
		capacity = fs.Int("cap", 0, "per-copy soft capacity for -algo dist (0 = uncapacitated)")
		showSol  = fs.Bool("solution", false, "print open facilities and assignments")
		save     = fs.String("save", "", "write the (last) solution to this file in the text solution format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	inst, err := fl.Read(r)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "instance:", fl.ComputeStats(inst))
	lb, err := lp.LowerBound(inst)
	if err != nil {
		return err
	}
	if lb < 1 {
		lb = 1
	}
	fmt.Fprintln(stdout, "LP lower bound:", lb)

	if *capacity > 0 {
		return runSoftCap(stdout, inst, *k, *capacity, *seed, *parallel, lb)
	}

	names := []string{*algo}
	if *algo == "all" {
		names = []string{"dist", "greedy", "jv", "jms", "mp", "localsearch", "cheapest", "openall"}
		if inst.M() <= seq.MaxExactFacilities {
			names = append(names, "exact")
		}
	}
	for _, name := range names {
		start := time.Now()
		sol, rep, err := solveOne(inst, name, *k, *seed, *parallel)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := fl.Validate(inst, sol); err != nil {
			return fmt.Errorf("%s produced invalid solution: %w", name, err)
		}
		cost := sol.Cost(inst)
		fmt.Fprintf(stdout, "%-12s cost=%-10d ratio=%-8.3f open=%-4d elapsed=%v\n",
			name, cost, float64(cost)/float64(lb), sol.OpenCount(), time.Since(start).Round(time.Microsecond))
		if rep != nil {
			fmt.Fprintf(stdout, "             rounds=%d messages=%d bits=%d chi=%d phases=%d cleanup-clients=%d\n",
				rep.Net.Rounds, rep.Net.Messages, rep.Net.Bits,
				rep.Derived.Chi, rep.Derived.Phases, rep.CleanupClients)
		}
		if *showSol {
			printSolution(stdout, inst, sol)
		}
		if *save != "" {
			if err := saveSolution(*save, sol); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "             wrote %s\n", *save)
		}
	}
	return nil
}

func saveSolution(name string, sol *fl.Solution) error {
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	werr := fl.WriteSolution(f, sol)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func runSoftCap(stdout io.Writer, inst *fl.Instance, k, capacity int, seed int64, parallel bool, lb int64) error {
	start := time.Now()
	sol, rep, err := core.SolveSoftCap(inst,
		core.Config{K: k, SoftCapacity: capacity},
		core.WithSeed(seed), core.WithParallel(parallel))
	if err != nil {
		return err
	}
	if err := fl.ValidateCap(inst, capacity, sol); err != nil {
		return fmt.Errorf("invalid capacitated solution: %w", err)
	}
	copies := 0
	open := 0
	for _, c := range sol.Copies {
		copies += c
		if c > 0 {
			open++
		}
	}
	cost := sol.Cost(inst)
	fmt.Fprintf(stdout, "dist-cap%-5d cost=%-10d ratio=%-8.3f open=%-4d copies=%-4d elapsed=%v\n",
		capacity, cost, float64(cost)/float64(lb), open, copies, time.Since(start).Round(time.Microsecond))
	fmt.Fprintf(stdout, "             rounds=%d messages=%d bits=%d\n",
		rep.Net.Rounds, rep.Net.Messages, rep.Net.Bits)
	return nil
}

func solveOne(inst *fl.Instance, algo string, k int, seed int64, parallel bool) (*fl.Solution, *core.Report, error) {
	switch algo {
	case "dist":
		sol, rep, err := core.Solve(inst, core.Config{K: k},
			core.WithSeed(seed), core.WithParallel(parallel))
		return sol, rep, err
	case "greedy":
		sol, err := seq.Greedy(inst)
		return sol, nil, err
	case "jv":
		sol, err := seq.JainVazirani(inst)
		return sol, nil, err
	case "jms":
		sol, err := seq.JMS(inst)
		return sol, nil, err
	case "mp":
		sol, err := seq.MettuPlaxton(inst)
		return sol, nil, err
	case "localsearch":
		sol, err := seq.LocalSearch(inst, nil, seq.LocalSearchConfig{})
		return sol, nil, err
	case "exact":
		sol, err := seq.Exact(inst)
		return sol, nil, err
	case "cheapest":
		sol, err := seq.CheapestPerClient(inst)
		return sol, nil, err
	case "openall":
		sol, err := seq.OpenAll(inst)
		return sol, nil, err
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func printSolution(stdout io.Writer, inst *fl.Instance, sol *fl.Solution) {
	fmt.Fprint(stdout, "open:")
	for i, o := range sol.Open {
		if o {
			fmt.Fprintf(stdout, " %d", i)
		}
	}
	fmt.Fprintln(stdout)
	for j, i := range sol.Assign {
		c, _ := inst.Cost(i, j)
		fmt.Fprintf(stdout, "client %d -> facility %d (cost %d)\n", j, i, c)
	}
}
