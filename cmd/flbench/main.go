// Command flbench regenerates the evaluation: every table and figure in
// EXPERIMENTS.md. Each experiment prints an aligned-text table to stdout
// and, with -out, also writes one CSV per table for plotting.
//
// Usage:
//
//	flbench [-exp all|E1..E12] [-quick] [-seed N] [-runs N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dfl/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag  = fs.String("exp", "all", "experiment ids (comma separated, E1..E12) or 'all'")
		quick    = fs.Bool("quick", false, "small sizes and few seeds (seconds instead of minutes)")
		seed     = fs.Int64("seed", 1, "master seed for instances and protocols")
		runs     = fs.Int("runs", 0, "protocol seeds averaged per measurement (0 = default)")
		outDir   = fs.String("out", "", "directory for CSV output (optional)")
		listOnly = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listOnly {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-4s %-7s %-45s claim: %s\n", e.ID, e.Kind, e.Name, e.Claim)
		}
		return nil
	}

	var exps []bench.Experiment
	if *expFlag == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}

	params := bench.Params{Quick: *quick, Seed: *seed, Runs: *runs}
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(stdout, "== %s: %s ==\n   claim: %s\n\n", e.ID, e.Name, e.Claim)
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *outDir != "" {
				name := filepath.Join(*outDir, strings.ToLower(t.ID)+".csv")
				if err := writeCSV(name, t); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "  wrote %s\n", name)
			}
		}
		fmt.Fprintf(stdout, "  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func writeCSV(name string, t bench.Table) error {
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	werr := t.CSV(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
