// Command flbench regenerates the evaluation: every table and figure in
// EXPERIMENTS.md. Each experiment prints an aligned-text table to stdout
// and, with -out, also writes one CSV per table for plotting. With -json
// the produced tables are additionally written as one machine-readable
// report (the format of the committed BENCH_seed.json perf baseline), and
// -cpuprofile / -memprofile capture pprof profiles of the run so hot-path
// regressions can be diagnosed without editing code.
//
// Usage:
//
//	flbench [-exp all|E1..E16] [-quick] [-seed N] [-runs N] [-out DIR]
//	        [-faults SPEC] [-json FILE] [-note STR]
//	        [-procs N] [-shards LIST] [-maxallocs N]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -faults injects an adversarial fault schedule into the chaos and
// byzantine experiments (E14, E15), e.g.
// -faults drop=0.2,crash=3@5,corrupt=0.3,byz=0@8 — see bench.ParseFaultSpec
// for the full syntax.
//
// -procs and -shards steer the engine experiments (E13, E16): -procs pins
// GOMAXPROCS for the measurement (default: all cores) and -shards replaces
// the default shard-count list with a comma-separated one (0 is the
// sequential runner). -maxallocs turns the run into a CI perf gate: it
// fails if any produced row allocates more than N allocations per round.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dfl/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag    = fs.String("exp", "all", "experiment ids (comma separated, E1..E18) or 'all'")
		quick      = fs.Bool("quick", false, "small sizes and few seeds (seconds instead of minutes)")
		seed       = fs.Int64("seed", 1, "master seed for instances and protocols")
		runs       = fs.Int("runs", 0, "protocol seeds averaged per measurement (0 = default)")
		outDir     = fs.String("out", "", "directory for CSV output (optional)")
		listOnly   = fs.Bool("list", false, "list experiments and exit")
		jsonPath   = fs.String("json", "", "write all produced tables as one machine-readable JSON report")
		note       = fs.String("note", "", "free-form annotation recorded in the -json report")
		faultSpec  = fs.String("faults", "", "fault schedule for the chaos/byzantine experiments, e.g. drop=0.2,crash=3@5,corrupt=0.3,byz=0@8")
		procs      = fs.Int("procs", 0, "GOMAXPROCS for the engine experiment (0 = all cores)")
		shardsFlag = fs.String("shards", "", "shard counts for the engine experiment, comma separated (0 = sequential runner)")
		maxAllocs  = fs.Float64("maxallocs", 0, "fail if any engine-throughput row exceeds this many allocs/round (0 = no gate)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "flbench: create mem profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "flbench: write mem profile:", err)
			}
			f.Close()
		}()
	}

	if *listOnly {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-4s %-7s %-45s claim: %s\n", e.ID, e.Kind, e.Name, e.Claim)
		}
		return nil
	}

	var exps []bench.Experiment
	if *expFlag == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}

	if *faultSpec != "" {
		// Fail on a malformed spec before any experiment burns time.
		if _, err := bench.ParseFaultSpec(*faultSpec); err != nil {
			return err
		}
	}
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}
	params := bench.Params{
		Quick: *quick, Seed: *seed, Runs: *runs, FaultSpec: *faultSpec,
		Procs: *procs, Shards: shards,
	}
	report := jsonReport{
		Schema:     "dfl-bench/1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Seed:       *seed,
		Note:       *note,
		FaultSpec:  *faultSpec,
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(stdout, "== %s: %s ==\n   claim: %s\n\n", e.ID, e.Name, e.Claim)
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *outDir != "" {
				name := filepath.Join(*outDir, strings.ToLower(t.ID)+".csv")
				if err := writeCSV(name, t); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "  wrote %s\n", name)
			}
			report.Tables = append(report.Tables, jsonTable{
				Experiment: e.ID,
				ID:         t.ID,
				Title:      t.Title,
				Note:       t.Note,
				Columns:    t.Columns,
				Rows:       t.Rows,
			})
		}
		fmt.Fprintf(stdout, "  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if *maxAllocs > 0 {
		if err := checkAllocGate(report.Tables, *maxAllocs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "alloc gate passed: every engine row <= %.1f allocs/round\n", *maxAllocs)
	}
	return nil
}

// parseShards turns the -shards list into the Params.Shards slice.
func parseShards(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -shards entry %q: want a non-negative integer", field)
		}
		out = append(out, n)
	}
	return out, nil
}

// checkAllocGate is the CI perf-smoke teeth: scan every produced table for
// an "allocs/round" column and fail if any row exceeds the bound. With no
// engine table in the run the gate is a configuration error, not a pass.
func checkAllocGate(tables []jsonTable, bound float64) error {
	checked := 0
	for _, t := range tables {
		col := -1
		for i, c := range t.Columns {
			if c == "allocs/round" {
				col = i
			}
		}
		if col < 0 {
			continue
		}
		for _, row := range t.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return fmt.Errorf("%s: unparseable allocs/round cell %q", t.ID, row[col])
			}
			checked++
			if v > bound {
				return fmt.Errorf("alloc gate: %s row %v has %.1f allocs/round, bound is %.1f",
					t.ID, row[0], v, bound)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("alloc gate: no allocs/round column in the selected experiments (run E13)")
	}
	return nil
}

// jsonReport is the -json output: the full set of produced tables plus
// enough environment metadata to compare reports across machines and
// commits. BENCH_seed.json at the repo root is one of these.
type jsonReport struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Quick      bool        `json:"quick"`
	Seed       int64       `json:"seed"`
	Note       string      `json:"note,omitempty"`
	FaultSpec  string      `json:"faults,omitempty"`
	Tables     []jsonTable `json:"tables"`
}

type jsonTable struct {
	Experiment string     `json:"experiment"`
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Note       string     `json:"note,omitempty"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
}

func writeJSON(name string, r jsonReport) error {
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(r)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("encode %s: %w", name, werr)
	}
	return cerr
}

func writeCSV(name string, t bench.Table) error {
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	werr := t.CSV(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
