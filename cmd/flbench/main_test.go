package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E9", "E10", "E11"} {
		if !strings.Contains(out.String(), id+" ") {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E6", "-quick", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T4 —") {
		t.Fatalf("table header missing:\n%s", out.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "t4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "workload,") {
		t.Fatalf("csv header wrong: %q", string(csv[:40]))
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E2, E6", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== E2:") || !strings.Contains(out.String(), "== E6:") {
		t.Fatalf("missing experiments:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out, &errBuf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-nope"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
