package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E9", "E10", "E11"} {
		if !strings.Contains(out.String(), id+" ") {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E6", "-quick", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T4 —") {
		t.Fatalf("table header missing:\n%s", out.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "t4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "workload,") {
		t.Fatalf("csv header wrong: %q", string(csv[:40]))
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E2, E6", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== E2:") || !strings.Contains(out.String(), "== E6:") {
		t.Fatalf("missing experiments:\n%s", out.String())
	}
}

func TestRunJSONReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E6", "-quick", "-json", path, "-note", "unit test"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema     string `json:"schema"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Note       string `json:"note"`
		Tables     []struct {
			Experiment string     `json:"experiment"`
			ID         string     `json:"id"`
			Columns    []string   `json:"columns"`
			Rows       [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "dfl-bench/1" || report.GoMaxProcs < 1 || report.Note != "unit test" {
		t.Fatalf("bad report metadata: %+v", report)
	}
	if len(report.Tables) == 0 || report.Tables[0].Experiment != "E6" {
		t.Fatalf("bad report tables: %+v", report.Tables)
	}
	tab := report.Tables[0]
	if len(tab.Rows) == 0 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("ragged table in report: %+v", tab)
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E6", "-quick", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	if errBuf.Len() != 0 {
		t.Fatalf("profile writing complained: %s", errBuf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out, &errBuf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-nope"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunFaultSpec(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "E14", "-quick", "-faults", "drop=0.25,crash=2@7"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drop=0.25,crash=2@7") {
		t.Fatalf("chaos table does not show the schedule:\n%s", out.String())
	}
	if err := run([]string{"-exp", "E14", "-quick", "-faults", "warp=1"}, &out, &errBuf); err == nil {
		t.Fatal("malformed -faults should fail before running experiments")
	}
}
