package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dfl/internal/core"
	"dfl/internal/fl"
	"dfl/internal/gen"
)

// buildFlnode compiles the binary under test once per test binary.
func buildFlnode(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "flnode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeInstance(t *testing.T, inst *fl.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "instance.ufl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fl.Write(f, inst); err != nil {
		t.Fatal(err)
	}
	return path
}

// startGateway launches the gateway role and parses the bound address from
// its first output line.
func startGateway(t *testing.T, bin, instFile string, shards int) (*exec.Cmd, string, *bytes.Buffer, chan struct{}) {
	t.Helper()
	cmd := exec.Command(bin, "-role", "gateway", "-in", instFile, "-shards", fmt.Sprint(shards), "-k", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	// Stderr gets its own buffer: sharing one with the drain goroutine
	// races against exec's internal ReadFrom copier and loses writes.
	var buf, ebuf bytes.Buffer
	cmd.Stderr = &ebuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatalf("gateway produced no output (stderr: %s)", ebuf.String())
	}
	first := sc.Text()
	fields := strings.Fields(first)
	if len(fields) < 2 || fields[0] != "gateway" {
		cmd.Process.Kill()
		t.Fatalf("unexpected gateway banner %q", first)
	}
	// Drain the rest of stdout until EOF; tests wait on drained before
	// calling Wait so the buffer is complete (Wait closes the pipe).
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			buf.WriteString(sc.Text())
			buf.WriteByte('\n')
		}
	}()
	return cmd, fields[1], &buf, drained
}

func startShard(t *testing.T, bin, instFile, gwAddr string, id, shards int, delay string, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{"-role", "shard", "-id", fmt.Sprint(id), "-shards", fmt.Sprint(shards),
		"-gateway", gwAddr, "-in", instFile, "-k", "8", "-seed", "5", "-round-delay", delay}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestFleetMatchesInProcSolver is the acceptance criterion at full process
// separation: a fault-free loopback fleet must report exactly the
// in-process solver's cost on the same instance and seed.
func TestFleetMatchesInProcSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e is slow under -short")
	}
	bin := buildFlnode(t)
	inst, err := gen.Uniform{M: 8, NC: 30, Density: 0.5, MinDegree: 1}.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Solve(inst, core.Config{K: 8}, core.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	instFile := writeInstance(t, inst)
	const shards = 3
	gw, addr, out, drained := startGateway(t, bin, instFile, shards)
	defer gw.Process.Kill()
	var procs []*exec.Cmd
	for i := 0; i < shards; i++ {
		procs = append(procs, startShard(t, bin, instFile, addr, i, shards, "0s"))
	}
	defer func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}()
	<-drained
	if err := gw.Wait(); err != nil {
		t.Fatalf("gateway failed: %v\n%s", err, out.String())
	}
	text := out.String()
	wantLine := fmt.Sprintf("certified cost=%d open=%d", want.Cost(inst), want.OpenCount())
	if !strings.Contains(text, wantLine) {
		t.Fatalf("fleet diverged from in-proc solver: want %q in output:\n%s", wantLine, text)
	}
	if !strings.Contains(text, "dead_facilities=0 dead_clients=0 orphaned=0 unservable=0") {
		t.Fatalf("fault-free run reported exemptions:\n%s", text)
	}
}

// TestFleetSurvivesSigkill is the satellite e2e: one flnode is SIGKILLed
// mid-run; the survivors must terminate and the gateway must certify the
// partial solution with the victim's span reported dead/exempt.
func TestFleetSurvivesSigkill(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e is slow under -short")
	}
	bin := buildFlnode(t)
	inst, err := gen.Uniform{M: 12, NC: 40, Density: 0.6, MinDegree: 2}.Generate(17)
	if err != nil {
		t.Fatal(err)
	}
	instFile := writeInstance(t, inst)
	const shards = 3
	gw, addr, out, drained := startGateway(t, bin, instFile, shards)
	defer gw.Process.Kill()
	var procs []*exec.Cmd
	for i := 0; i < shards; i++ {
		procs = append(procs, startShard(t, bin, instFile, addr, i, shards, "20ms"))
	}
	defer func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}()
	// Let the run get under way, then kill shard 1 outright.
	time.Sleep(700 * time.Millisecond)
	if err := procs[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("sigkill: %v", err)
	}
	procs[1].Wait()
	<-drained
	if err := gw.Wait(); err != nil {
		t.Fatalf("gateway did not certify after the kill: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "shard 1: down") {
		t.Fatalf("gateway never reported the victim down:\n%s", text)
	}
	if !strings.Contains(text, "certified cost=") {
		t.Fatalf("no certified solution after the kill:\n%s", text)
	}
	// The victim's clients must surface as exemptions (dead with the
	// shard, orphaned, or unservable), never as silently dropped work.
	if strings.Contains(text, "dead_facilities=0 dead_clients=0 orphaned=0 unservable=0") {
		t.Fatalf("kill left no trace in the exemption accounting:\n%s", text)
	}
}

// TestFleetCheckpointRestart is the tentpole e2e: a checkpointing flnode is
// SIGKILLed mid-run, a fresh process is launched with -resume from its
// checkpoint file, and the fleet must finish with ZERO exemptions — the
// crash degraded to transient loss, not a masked span.
func TestFleetCheckpointRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e is slow under -short")
	}
	bin := buildFlnode(t)
	inst, err := gen.Uniform{M: 12, NC: 40, Density: 0.6, MinDegree: 2}.Generate(17)
	if err != nil {
		t.Fatal(err)
	}
	instFile := writeInstance(t, inst)
	ckptFile := filepath.Join(t.TempDir(), "shard1.ckpt")
	const shards = 3
	gw, addr, out, drained := startGateway(t, bin, instFile, shards)
	defer gw.Process.Kill()
	var procs []*exec.Cmd
	for i := 0; i < shards; i++ {
		extra := []string(nil)
		if i == 1 {
			extra = []string{"-checkpoint", ckptFile}
		}
		procs = append(procs, startShard(t, bin, instFile, addr, i, shards, "20ms", extra...))
	}
	defer func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}()
	// Let the run get under way and the victim write checkpoints, then
	// kill it outright and relaunch its successor from the image.
	time.Sleep(700 * time.Millisecond)
	if err := procs[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("sigkill: %v", err)
	}
	procs[1].Wait()
	if _, err := os.Stat(ckptFile); err != nil {
		t.Fatalf("victim left no checkpoint: %v", err)
	}
	procs[1] = startShard(t, bin, instFile, addr, 1, shards, "0s", "-checkpoint", ckptFile, "-resume")
	<-drained
	if err := gw.Wait(); err != nil {
		t.Fatalf("gateway did not certify after the restart: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "certified cost=") {
		t.Fatalf("no certified solution after the restart:\n%s", text)
	}
	if strings.Contains(text, "shard 1: down") {
		t.Fatalf("readmitted shard still reported down:\n%s", text)
	}
	// The whole point of the rung: the crash left no exemption behind.
	if !strings.Contains(text, "dead_facilities=0 dead_clients=0 orphaned=0 unservable=0") {
		t.Fatalf("restart did not erase the outage:\n%s", text)
	}
}
