// Command flnode is one party of a real distributed deployment: it either
// hosts a shard of the facility-location protocol's nodes and speaks UDP to
// its peer shards, or acts as the gateway that sequences the fleet's round
// barriers, collects the surviving shards' result fragments, assembles them
// and certifies the solution.
//
// A three-shard loopback deployment by hand:
//
//	flgen -family euclidean -m 15 -nc 60 > inst.ufl
//	flnode -role gateway -in inst.ufl -shards 3 -k 16 &        # prints its address
//	flnode -role shard -id 0 -shards 3 -gateway 127.0.0.1:PORT -in inst.ufl -k 16 &
//	flnode -role shard -id 1 -shards 3 -gateway 127.0.0.1:PORT -in inst.ufl -k 16 &
//	flnode -role shard -id 2 -shards 3 -gateway 127.0.0.1:PORT -in inst.ufl -k 16
//
// All parties must agree on the instance, -shards, -k and -seed; the
// fault-free result is then byte-identical to `flsolve -algo dist` on the
// same instance and seed. Kill any shard mid-run and the rest degrade
// gracefully: the gateway masks it down and the assembled solution
// certifies with the victim's clients as exemptions.
//
// With -checkpoint FILE a shard snapshots a resumable image every
// -checkpoint-every rounds; relaunching it with -resume rejoins the fleet
// from that image under a fresh incarnation, and if the gateway admits it
// within -admit-window rounds of the death the outage degrades to
// transient packet loss — the run ends with zero exemptions instead of a
// masked span.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dfl/internal/congest"
	"dfl/internal/core"
	"dfl/internal/fl"
	"dfl/internal/transport/udp"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flnode:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		role       = fs.String("role", "", "gateway or shard")
		in         = fs.String("in", "-", "instance file ('-' for stdin)")
		shards     = fs.Int("shards", 2, "number of shards in the fleet")
		id         = fs.Int("id", 0, "this shard's index in [0,shards) (role shard)")
		gateway    = fs.String("gateway", "", "gateway address to dial (role shard)")
		listen     = fs.String("listen", "127.0.0.1:0", "gateway bind address (role gateway)")
		k          = fs.Int("k", 16, "protocol trade-off parameter")
		seed       = fs.Int64("seed", 1, "protocol seed (must match across the fleet)")
		chaosSpec  = fs.String("chaos", "", "packet chaos on this shard's socket, e.g. loss=0.1,dup=0.05,delay=0.05,lag=5ms")
		roundDelay = fs.Duration("round-delay", 0, "artificial pause per round (stretches runs for churn testing)")
		showSol    = fs.Bool("solution", false, "gateway: print open facilities and assignments")
		ckptFile   = fs.String("checkpoint", "", "shard: write a resumable checkpoint image to this file")
		ckptEvery  = fs.Int("checkpoint-every", 1, "shard: checkpoint cadence in rounds (1 keeps resume loss-equivalent)")
		resume     = fs.Bool("resume", false, "shard: resume from -checkpoint instead of starting fresh (rejoins the fleet)")
		admitWin   = fs.Int("admit-window", 0, "gateway: rounds a down shard may rejoin within (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	inst, err := fl.Read(r)
	if err != nil {
		return err
	}
	cfg := core.Config{K: *k}
	if *shards < 1 {
		return fmt.Errorf("need at least one shard, got %d", *shards)
	}
	spans := congest.SplitSpans(inst.M()+inst.NC(), *shards)
	if len(spans) != *shards {
		return fmt.Errorf("%d shards over %d nodes leaves empty shards", *shards, inst.M()+inst.NC())
	}
	switch *role {
	case "gateway":
		return runGateway(stdout, inst, cfg, spans, *listen, *admitWin, *showSol)
	case "shard":
		return runShard(stdout, inst, cfg, spans, *id, *gateway, *seed, *chaosSpec, *roundDelay,
			shardCkpt{file: *ckptFile, every: *ckptEvery, resume: *resume})
	default:
		return fmt.Errorf("-role must be gateway or shard, got %q", *role)
	}
}

func runGateway(stdout io.Writer, inst *fl.Instance, cfg core.Config, spans []congest.Span, listen string, admitWin int, showSol bool) error {
	d, err := core.Derive(inst, cfg)
	if err != nil {
		return err
	}
	gw, err := udp.NewGateway(listen, spans, udp.Config{AdmitWindow: admitWin})
	if err != nil {
		return err
	}
	defer gw.Close()
	// The first output line is machine-readable: harnesses parse the bound
	// address from it before launching the shard fleet.
	fmt.Fprintf(stdout, "gateway %s shards=%d\n", gw.Addr(), len(spans))
	start := time.Now()
	res, err := gw.Run(d.TotalRounds + 8)
	if err != nil {
		return err
	}
	frags := make([]*core.Fragment, len(spans))
	for i, p := range res.Fragments {
		if p == nil {
			fmt.Fprintf(stdout, "shard %d: down\n", i)
			continue
		}
		frag, err := core.DecodeFragment(p, inst.M(), inst.NC())
		if err != nil {
			return fmt.Errorf("shard %d fragment: %w", i, err)
		}
		frags[i] = frag
	}
	sol, rep, err := core.Assemble(inst, cfg, frags)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "certified cost=%d open=%d rounds=%d wall=%v\n",
		rep.Cost, rep.OpenFacilities, res.Rounds, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "exemptions dead_facilities=%d dead_clients=%d orphaned=%d unservable=%d\n",
		len(rep.DeadFacilities), len(rep.DeadClients), len(rep.OrphanedClients), len(rep.UnservableClients))
	if showSol {
		for i, open := range sol.Open {
			if open {
				fmt.Fprintf(stdout, "open %d\n", i)
			}
		}
		for j, i := range sol.Assign {
			fmt.Fprintf(stdout, "assign %d %d\n", j, i)
		}
	}
	return nil
}

// shardCkpt bundles the shard role's checkpoint/resume options.
type shardCkpt struct {
	file   string
	every  int
	resume bool
}

func runShard(stdout io.Writer, inst *fl.Instance, cfg core.Config, spans []congest.Span, id int, gateway string, seed int64, chaosSpec string, roundDelay time.Duration, ck shardCkpt) error {
	if gateway == "" {
		return fmt.Errorf("role shard needs -gateway")
	}
	if id < 0 || id >= len(spans) {
		return fmt.Errorf("-id %d outside [0,%d)", id, len(spans))
	}
	if ck.resume && ck.file == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	chaos, err := udp.ParseChaos(chaosSpec)
	if err != nil {
		return err
	}
	ckCfg := core.CheckpointConfig{}
	if ck.file != "" {
		ckCfg = core.CheckpointConfig{Every: ck.every, Sink: core.NewFileSink(ck.file)}
	}

	var image []byte
	resumeRound := 0
	if ck.resume {
		image, err = os.ReadFile(ck.file)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		ckpt, err := core.DecodeCheckpoint(image)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		resumeRound = ckpt.Rounds()
	}

	var sh *udp.Shard
	if ck.resume {
		sh, err = udp.Rejoin(id, len(spans), gateway, resumeRound, udp.Config{}, chaos)
	} else {
		sh, err = udp.Dial(id, len(spans), gateway, udp.Config{}, chaos)
	}
	if err != nil {
		return err
	}
	defer sh.Close()
	var tr congest.Transport = sh
	if roundDelay > 0 {
		tr = slowTransport{Transport: sh, delay: roundDelay}
	}

	var frag *core.Fragment
	switch {
	case ck.resume:
		frag, err = core.ResumeShard(inst, cfg, spans[id], seed, image, tr, ckCfg)
	case ckCfg.Sink != nil:
		frag, err = core.SolveShardCheckpointed(inst, cfg, spans[id], seed, tr, ckCfg)
	default:
		frag, err = core.SolveShard(inst, cfg, spans[id], seed, tr)
	}
	if err != nil {
		return err
	}
	if err := sh.SendResult(frag.Encode(nil)); err != nil {
		return err
	}
	if ck.resume {
		fmt.Fprintf(stdout, "shard %d resumed from round %d, readmitted at round %d, done rounds=%d messages=%d\n",
			id, resumeRound, sh.AdmitRound(), frag.Stats.Rounds, frag.Stats.Messages)
	} else {
		fmt.Fprintf(stdout, "shard %d done rounds=%d messages=%d\n", id, frag.Stats.Rounds, frag.Stats.Messages)
	}
	return nil
}

// slowTransport stretches every round by a fixed pause so churn harnesses
// get a realistic window to kill processes mid-run.
type slowTransport struct {
	congest.Transport
	delay time.Duration
}

func (s slowTransport) Begin(round int) (congest.RoundStart, error) {
	time.Sleep(s.delay)
	return s.Transport.Begin(round)
}
