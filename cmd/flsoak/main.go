// Command flsoak is the long-running churn harness for the UDP transport:
// it repeatedly deploys the protocol as a local flnode fleet on loopback,
// injects real packet chaos on every shard's socket, SIGKILLs a shard
// mid-run, and asserts the certifier invariant after every deployment —
// every honest servable client is certified-served or reported as a
// certified exemption. Any run that hangs, fails to assemble or fails
// certification exits nonzero.
//
//	flsoak -duration 15s -chaos loss=0.1 -kill 1
//
// With -respawn the harness exercises the recovery rung instead of the
// masking rung: victims checkpoint every round, and after the SIGKILL a
// successor process is launched with -resume after a randomized delay. A
// victim the gateway readmits must leave NO exemptions in its span — the
// soak fails if a recovered shard's clients end the run dead or orphaned.
//
// Every deployment also emits one machine-readable JSON summary line
// (victims, kill/rejoin rounds, exemption counts, cost ratio against the
// in-process fault-free baseline) so dashboards can scrape soak logs.
// -e17 replaces the duration loop with the E17 sweep: one masked and one
// respawned deployment per kill round, as a markdown table.
//
// The harness hosts the gateway in-process (so it can schedule kills by
// round and certify fragments directly) and execs the flnode binary for
// the shard fleet; -flnode overrides discovery (sibling of the flsoak
// binary, then $PATH).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"dfl/internal/congest"
	"dfl/internal/core"
	"dfl/internal/fl"
	"dfl/internal/gen"
	"dfl/internal/transport/udp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flsoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration     = fs.Duration("duration", 15*time.Second, "keep launching deployments until this much time has passed")
		shards       = fs.Int("shards", 3, "shard processes per deployment")
		m            = fs.Int("m", 12, "facilities per generated instance")
		nc           = fs.Int("nc", 48, "clients per generated instance")
		k            = fs.Int("k", 16, "protocol trade-off parameter")
		seed         = fs.Int64("seed", 1, "base seed (instance i uses seed+i)")
		chaosSpec    = fs.String("chaos", "loss=0.1", "packet chaos per shard socket ('' disables)")
		kills        = fs.Int("kill", 1, "shards to SIGKILL per deployment (capped at shards-1)")
		roundDelay   = fs.Duration("round-delay", 15*time.Millisecond, "per-round pause on shards, widens the kill window")
		flnodeBin    = fs.String("flnode", "", "path to the flnode binary (default: sibling of flsoak, then $PATH)")
		runTimeout   = fs.Duration("run-timeout", 2*time.Minute, "watchdog per deployment; tripping it is a hang and fails the soak")
		respawn      = fs.Bool("respawn", false, "checkpoint victims and relaunch them with -resume after the kill")
		respawnDelay = fs.Duration("respawn-delay", 200*time.Millisecond, "upper bound on the randomized pause before a victim's successor launches")
		e17          = fs.Bool("e17", false, "run the E17 kill-round sweep (masked vs respawned) instead of the duration loop")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bin, err := findFlnode(*flnodeBin)
	if err != nil {
		return err
	}
	if *kills >= *shards {
		*kills = *shards - 1
	}
	base := runCfg{
		shards: *shards, m: *m, nc: *nc, k: *k, kills: *kills,
		chaos: *chaosSpec, roundDelay: *roundDelay, timeout: *runTimeout,
		respawn: *respawn, respawnDelay: *respawnDelay, killRound: -1, victim: -1,
	}
	if *e17 {
		return runE17(stdout, bin, base, *seed)
	}
	start := time.Now()
	runs, killed, failures := 0, 0, 0
	for time.Since(start) < *duration {
		c := base
		c.run = runs
		c.seed = *seed + int64(runs)
		res, err := soakOnce(stdout, bin, c)
		runs++
		killed += len(res.kills)
		emitSummary(stdout, c, res, err)
		if err != nil {
			failures++
			fmt.Fprintf(stdout, "run %d: FAIL: %v\n", runs-1, err)
			continue
		}
		fmt.Fprintf(stdout, "run %d: certified cost=%d rounds=%d kills=%d down=%v dead_clients=%d orphaned=%d unservable=%d\n",
			runs-1, res.rep.Cost, res.rounds, len(res.kills), res.down,
			len(res.rep.DeadClients), len(res.rep.OrphanedClients), len(res.rep.UnservableClients))
	}
	fmt.Fprintf(stdout, "soak: %d runs, %d kills, %d failures in %v\n", runs, killed, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("%d of %d runs failed the certifier invariant", failures, runs)
	}
	if runs == 0 {
		return fmt.Errorf("no deployment completed within %v", *duration)
	}
	return nil
}

// runE17 is the kill-round sweep behind the E17 table: the same instance
// and victim killed at increasing rounds, once with the victim masked
// forever and once with its successor readmitted, reporting cost
// degradation against the fault-free baseline in each regime.
func runE17(stdout io.Writer, bin string, base runCfg, seed int64) error {
	inst, err := gen.Uniform{M: base.m, NC: base.nc, Density: 0.5, MinDegree: 2}.Generate(seed)
	if err != nil {
		return err
	}
	d, err := core.Derive(inst, core.Config{K: base.k})
	if err != nil {
		return err
	}
	killRounds := []int{2, d.ProtoRounds / 4, d.ProtoRounds / 2, 3 * d.ProtoRounds / 4, d.ProtoRounds - 1}
	fmt.Fprintf(stdout, "E17: m=%d nc=%d k=%d seed=%d proto_rounds=%d chaos=%q\n",
		base.m, base.nc, base.k, seed, d.ProtoRounds, base.chaos)
	fmt.Fprintln(stdout, "| kill round | masked ratio | masked exempt | respawn ratio | respawn exempt | rejoin round |")
	fmt.Fprintln(stdout, "|-----------|--------------|---------------|---------------|----------------|--------------|")
	run := 0
	for _, kr := range killRounds {
		row := [2]soakResult{}
		for mode, doRespawn := range []bool{false, true} {
			c := base
			c.run, c.seed, c.kills, c.killRound, c.respawn = run, seed, 1, kr, doRespawn
			c.victim = 1 // pinned: rows must compare the same span, and span 0 (all facilities at small m) masks degenerately to cost 0
			run++
			res, err := soakOnce(stdout, bin, c)
			emitSummary(stdout, c, res, err)
			if err != nil {
				return fmt.Errorf("kill round %d (respawn=%v): %w", kr, doRespawn, err)
			}
			row[mode] = res
		}
		rejoin := "-"
		if len(row[1].kills) > 0 && row[1].kills[0].RejoinRound >= 0 {
			rejoin = fmt.Sprint(row[1].kills[0].RejoinRound)
		}
		fmt.Fprintf(stdout, "| %d | %.3f | %d | %.3f | %d | %s |\n",
			kr, row[0].costRatio, exemptCount(row[0].rep), row[1].costRatio, exemptCount(row[1].rep), rejoin)
	}
	return nil
}

func exemptCount(rep *core.Report) int {
	return len(rep.DeadFacilities) + len(rep.DeadClients) + len(rep.OrphanedClients)
}

type runCfg struct {
	run, shards, m, nc, k, kills int
	seed                         int64
	chaos                        string
	roundDelay                   time.Duration
	timeout                      time.Duration
	respawn                      bool
	respawnDelay                 time.Duration
	killRound                    int // -1: random round inside the phase sweep
	victim                       int // -1: rotate victims with the run index
}

// killRecord traces one victim through the run for the JSON summary.
type killRecord struct {
	Shard       int `json:"shard"`
	KillRound   int `json:"kill_round"`
	RejoinRound int `json:"rejoin_round"` // -1: never readmitted
	Incarnation int `json:"incarnation"`
}

type soakResult struct {
	rep       *core.Report
	rounds    int
	kills     []killRecord
	down      []int
	baseline  int64
	costRatio float64
	fenced    int64
	rejected  int64
}

// summaryLine is the per-run machine-readable record: one JSON object per
// deployment, scrapeable from soak logs.
type summaryLine struct {
	Run        int          `json:"run"`
	Seed       int64        `json:"seed"`
	OK         bool         `json:"ok"`
	Error      string       `json:"error,omitempty"`
	Respawn    bool         `json:"respawn"`
	Cost       int64        `json:"cost"`
	Baseline   int64        `json:"baseline"`
	CostRatio  float64      `json:"cost_ratio"`
	Rounds     int          `json:"rounds"`
	Kills      []killRecord `json:"kills"`
	DeadFac    int          `json:"dead_facilities"`
	DeadCli    int          `json:"dead_clients"`
	Orphaned   int          `json:"orphaned"`
	Unservable int          `json:"unservable"`
	Fenced     int64        `json:"fenced"`
	Rejected   int64        `json:"rejected"`
}

func emitSummary(stdout io.Writer, c runCfg, res soakResult, runErr error) {
	s := summaryLine{
		Run: c.run, Seed: c.seed, OK: runErr == nil, Respawn: c.respawn,
		Baseline: res.baseline, CostRatio: res.costRatio, Rounds: res.rounds,
		Kills: res.kills, Fenced: res.fenced, Rejected: res.rejected,
	}
	if runErr != nil {
		s.Error = runErr.Error()
	}
	if res.rep != nil {
		s.Cost = res.rep.Cost
		s.DeadFac = len(res.rep.DeadFacilities)
		s.DeadCli = len(res.rep.DeadClients)
		s.Orphaned = len(res.rep.OrphanedClients)
		s.Unservable = len(res.rep.UnservableClients)
	}
	if s.Kills == nil {
		s.Kills = []killRecord{}
	}
	b, err := json.Marshal(s)
	if err != nil {
		return
	}
	fmt.Fprintf(stdout, "summary %s\n", b)
}

// soakOnce executes one deployment: generate an instance, host the
// gateway, exec the shard fleet, kill victims mid-run (respawning their
// successors when configured), assemble, certify.
func soakOnce(stdout io.Writer, bin string, c runCfg) (soakResult, error) {
	inst, err := gen.Uniform{M: c.m, NC: c.nc, Density: 0.5, MinDegree: 2}.Generate(c.seed)
	if err != nil {
		return soakResult{}, err
	}
	d, err := core.Derive(inst, core.Config{K: c.k})
	if err != nil {
		return soakResult{}, err
	}
	// The fault-free baseline the JSON summary prices degradation against.
	baseSol, _, err := core.Solve(inst, core.Config{K: c.k}, core.WithSeed(c.seed))
	if err != nil {
		return soakResult{}, err
	}
	baseline := baseSol.Cost(inst)
	dir, err := os.MkdirTemp("", "flsoak")
	if err != nil {
		return soakResult{}, err
	}
	defer os.RemoveAll(dir)
	instFile := filepath.Join(dir, "instance.ufl")
	f, err := os.Create(instFile)
	if err != nil {
		return soakResult{}, err
	}
	if err := fl.Write(f, inst); err != nil {
		f.Close()
		return soakResult{}, err
	}
	f.Close()

	spans := congest.SplitSpans(c.m+c.nc, c.shards)
	gw, err := udp.NewGateway("127.0.0.1:0", spans, udp.Config{})
	if err != nil {
		return soakResult{}, err
	}
	defer gw.Close()

	// Kill schedule: each victim dies at a random round inside the phase
	// sweep (or the fixed -e17 round), so deaths land while state is
	// still being negotiated.
	rng := rand.New(rand.NewSource(c.seed))
	killAt := make(map[int]int) // round -> shard
	isVictim := make([]bool, c.shards)
	for v := 0; v < c.kills; v++ {
		victim := (c.run + v) % c.shards
		if c.victim >= 0 {
			victim = (c.victim + v) % c.shards
		}
		round := c.killRound
		if round < 0 {
			round = 2 + rng.Intn(max(d.ProtoRounds-2, 1))
		}
		killAt[round+v] = victim
		isVictim[victim] = true
	}
	ckptFile := func(shard int) string {
		return filepath.Join(dir, fmt.Sprintf("shard%d.ckpt", shard))
	}
	shardArgs := func(shard int, resume bool) []string {
		args := []string{
			"-role", "shard",
			"-id", fmt.Sprint(shard),
			"-shards", fmt.Sprint(c.shards),
			"-gateway", gw.Addr(),
			"-in", instFile,
			"-k", fmt.Sprint(c.k),
			"-seed", fmt.Sprint(c.seed),
			"-chaos", shardChaos(c.chaos, c.seed, shard),
			"-round-delay", c.roundDelay.String(),
		}
		if c.respawn && isVictim[shard] {
			args = append(args, "-checkpoint", ckptFile(shard))
		}
		if resume {
			args = append(args, "-resume")
		}
		return args
	}

	procs := make([]*exec.Cmd, c.shards)
	var procMu sync.Mutex
	closed := false // set once reaping starts; respawns after that would leak
	var kills []killRecord
	var respawnWG sync.WaitGroup
	gw.OnRound = func(round int, down []bool) {
		victim, ok := killAt[round]
		if !ok {
			return
		}
		procMu.Lock()
		defer procMu.Unlock()
		p := procs[victim]
		if p == nil || p.Process == nil {
			return
		}
		if err := p.Process.Kill(); err != nil {
			return
		}
		kills = append(kills, killRecord{Shard: victim, KillRound: round, RejoinRound: -1, Incarnation: 1})
		fmt.Fprintf(stdout, "run %d: SIGKILL shard %d at round %d\n", c.run, victim, round)
		if !c.respawn {
			return
		}
		delay := time.Duration(rng.Int63n(int64(c.respawnDelay) + 1))
		respawnWG.Add(1)
		go func() {
			defer respawnWG.Done()
			p.Wait() // reap the victim before its successor binds
			time.Sleep(delay)
			cmd := exec.Command(bin, shardArgs(victim, true)...)
			cmd.Stdout = io.Discard
			cmd.Stderr = io.Discard
			procMu.Lock()
			defer procMu.Unlock()
			if closed {
				return
			}
			if err := cmd.Start(); err != nil {
				fmt.Fprintf(stdout, "run %d: respawn shard %d failed: %v\n", c.run, victim, err)
				return
			}
			procs[victim] = cmd
			fmt.Fprintf(stdout, "run %d: respawned shard %d after %v\n", c.run, victim, delay.Round(time.Millisecond))
		}()
	}

	for i := 0; i < c.shards; i++ {
		cmd := exec.Command(bin, shardArgs(i, false)...)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			reap(procs, &procMu, &closed)
			return soakResult{}, fmt.Errorf("start shard %d: %w", i, err)
		}
		procMu.Lock()
		procs[i] = cmd
		procMu.Unlock()
	}
	defer reap(procs, &procMu, &closed)

	// Watchdog: a hang is a failure, never a stuck CI job.
	watchdog := time.AfterFunc(c.timeout, func() {
		procMu.Lock()
		defer procMu.Unlock()
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
			}
		}
		gw.Close()
	})
	defer watchdog.Stop()

	res, err := gw.Run(d.TotalRounds + 8)
	respawnWG.Wait()
	out := soakResult{kills: kills, baseline: baseline}
	if err != nil {
		return out, fmt.Errorf("gateway: %w", err)
	}
	out.rounds, out.fenced, out.rejected = res.Rounds, res.Fenced, res.Rejected
	for i := range kills {
		v := kills[i].Shard
		kills[i].RejoinRound = res.AdmitRounds[v]
		kills[i].Incarnation = int(res.Incarnations[v])
	}
	frags := make([]*core.Fragment, c.shards)
	for i, p := range res.Fragments {
		if p == nil {
			out.down = append(out.down, i)
			continue
		}
		frag, err := core.DecodeFragment(p, inst.M(), inst.NC())
		if err != nil {
			return out, fmt.Errorf("shard %d fragment: %w", i, err)
		}
		frags[i] = frag
	}
	// Assemble certifies internally: this is the soak invariant — every
	// honest servable client served or exempt, no matter what the chaos
	// and the kills did.
	_, rep, err := core.Assemble(inst, core.Config{K: c.k}, frags)
	if err != nil {
		return out, err
	}
	out.rep = rep
	if baseline > 0 {
		out.costRatio = float64(rep.Cost) / float64(baseline)
	}
	// The recovery rung's invariant: a victim the gateway READMITTED must
	// end the run indistinguishable from a survivor — no exemption of any
	// class may land in its span.
	for _, kr := range kills {
		if kr.RejoinRound < 0 {
			continue
		}
		span := spans[kr.Shard]
		for _, i := range rep.DeadFacilities {
			if span.Contains(i) {
				return out, fmt.Errorf("readmitted shard %d left dead facility %d", kr.Shard, i)
			}
		}
		for _, j := range rep.DeadClients {
			if span.Contains(inst.M() + j) {
				return out, fmt.Errorf("readmitted shard %d left dead client %d", kr.Shard, j)
			}
		}
		for _, j := range rep.OrphanedClients {
			if span.Contains(inst.M() + j) {
				return out, fmt.Errorf("readmitted shard %d left orphaned client %d", kr.Shard, j)
			}
		}
	}
	return out, nil
}

// shardChaos gives each shard a distinct chaos seed so fleets don't drop
// packets in lockstep.
func shardChaos(spec string, seed int64, shard int) string {
	if spec == "" {
		return ""
	}
	return fmt.Sprintf("%s,seed=%d", spec, seed*31+int64(shard)+1)
}

func reap(procs []*exec.Cmd, mu *sync.Mutex, closed *bool) {
	mu.Lock()
	*closed = true
	snapshot := append([]*exec.Cmd(nil), procs...)
	mu.Unlock()
	for _, p := range snapshot {
		if p == nil {
			continue
		}
		if p.Process != nil {
			p.Process.Kill()
		}
		p.Wait()
	}
}

func findFlnode(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "flnode")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("flnode"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("flnode binary not found: build it next to flsoak (make soak) or pass -flnode")
}
