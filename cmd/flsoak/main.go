// Command flsoak is the long-running churn harness for the UDP transport:
// it repeatedly deploys the protocol as a local flnode fleet on loopback,
// injects real packet chaos on every shard's socket, SIGKILLs a shard
// mid-run, and asserts the certifier invariant after every deployment —
// every honest servable client is certified-served or reported as a
// certified exemption. Any run that hangs, fails to assemble or fails
// certification exits nonzero.
//
//	flsoak -duration 15s -chaos loss=0.1 -kill 1
//
// The harness hosts the gateway in-process (so it can schedule kills by
// round and certify fragments directly) and execs the flnode binary for
// the shard fleet; -flnode overrides discovery (sibling of the flsoak
// binary, then $PATH).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"dfl/internal/congest"
	"dfl/internal/core"
	"dfl/internal/fl"
	"dfl/internal/gen"
	"dfl/internal/transport/udp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flsoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration   = fs.Duration("duration", 15*time.Second, "keep launching deployments until this much time has passed")
		shards     = fs.Int("shards", 3, "shard processes per deployment")
		m          = fs.Int("m", 12, "facilities per generated instance")
		nc         = fs.Int("nc", 48, "clients per generated instance")
		k          = fs.Int("k", 16, "protocol trade-off parameter")
		seed       = fs.Int64("seed", 1, "base seed (instance i uses seed+i)")
		chaosSpec  = fs.String("chaos", "loss=0.1", "packet chaos per shard socket ('' disables)")
		kills      = fs.Int("kill", 1, "shards to SIGKILL per deployment (capped at shards-1)")
		roundDelay = fs.Duration("round-delay", 15*time.Millisecond, "per-round pause on shards, widens the kill window")
		flnodeBin  = fs.String("flnode", "", "path to the flnode binary (default: sibling of flsoak, then $PATH)")
		runTimeout = fs.Duration("run-timeout", 2*time.Minute, "watchdog per deployment; tripping it is a hang and fails the soak")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bin, err := findFlnode(*flnodeBin)
	if err != nil {
		return err
	}
	if *kills >= *shards {
		*kills = *shards - 1
	}
	start := time.Now()
	runs, killed, failures := 0, 0, 0
	for time.Since(start) < *duration {
		res, err := soakOnce(stdout, bin, runCfg{
			run: runs, shards: *shards, m: *m, nc: *nc, k: *k,
			seed: *seed + int64(runs), chaos: *chaosSpec, kills: *kills,
			roundDelay: *roundDelay, timeout: *runTimeout,
		})
		runs++
		killed += res.killed
		if err != nil {
			failures++
			fmt.Fprintf(stdout, "run %d: FAIL: %v\n", runs-1, err)
			continue
		}
		fmt.Fprintf(stdout, "run %d: certified cost=%d rounds=%d kills=%d down=%v dead_clients=%d orphaned=%d unservable=%d\n",
			runs-1, res.rep.Cost, res.rounds, res.killed, res.down,
			len(res.rep.DeadClients), len(res.rep.OrphanedClients), len(res.rep.UnservableClients))
	}
	fmt.Fprintf(stdout, "soak: %d runs, %d kills, %d failures in %v\n", runs, killed, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("%d of %d runs failed the certifier invariant", failures, runs)
	}
	if runs == 0 {
		return fmt.Errorf("no deployment completed within %v", *duration)
	}
	return nil
}

type runCfg struct {
	run, shards, m, nc, k, kills int
	seed                         int64
	chaos                        string
	roundDelay                   time.Duration
	timeout                      time.Duration
}

type runResult struct {
	rep    *core.Report
	rounds int
	killed int
	down   []int
}

// soakOnce executes one deployment: generate an instance, host the
// gateway, exec the shard fleet, kill victims mid-run, assemble, certify.
func soakOnce(stdout io.Writer, bin string, c runCfg) (runResult, error) {
	inst, err := gen.Uniform{M: c.m, NC: c.nc, Density: 0.5, MinDegree: 2}.Generate(c.seed)
	if err != nil {
		return runResult{}, err
	}
	d, err := core.Derive(inst, core.Config{K: c.k})
	if err != nil {
		return runResult{}, err
	}
	dir, err := os.MkdirTemp("", "flsoak")
	if err != nil {
		return runResult{}, err
	}
	defer os.RemoveAll(dir)
	instFile := filepath.Join(dir, "instance.ufl")
	f, err := os.Create(instFile)
	if err != nil {
		return runResult{}, err
	}
	if err := fl.Write(f, inst); err != nil {
		f.Close()
		return runResult{}, err
	}
	f.Close()

	spans := congest.SplitSpans(c.m+c.nc, c.shards)
	gw, err := udp.NewGateway("127.0.0.1:0", spans, udp.Config{})
	if err != nil {
		return runResult{}, err
	}
	defer gw.Close()

	// Kill schedule: each victim dies at a random round inside the phase
	// sweep, so deaths land while state is still being negotiated.
	rng := rand.New(rand.NewSource(c.seed))
	killAt := make(map[int]int) // round -> shard
	for v := 0; v < c.kills; v++ {
		victim := (c.run + v) % c.shards
		round := 2 + rng.Intn(max(d.ProtoRounds-2, 1))
		killAt[round] = victim
	}

	procs := make([]*exec.Cmd, c.shards)
	var procMu sync.Mutex
	killedCount := 0
	gw.OnRound = func(round int, down []bool) {
		victim, ok := killAt[round]
		if !ok {
			return
		}
		procMu.Lock()
		defer procMu.Unlock()
		if p := procs[victim]; p != nil && p.Process != nil {
			if err := p.Process.Kill(); err == nil {
				killedCount++
				fmt.Fprintf(stdout, "run %d: SIGKILL shard %d at round %d\n", c.run, victim, round)
			}
		}
	}

	for i := 0; i < c.shards; i++ {
		cmd := exec.Command(bin,
			"-role", "shard",
			"-id", fmt.Sprint(i),
			"-shards", fmt.Sprint(c.shards),
			"-gateway", gw.Addr(),
			"-in", instFile,
			"-k", fmt.Sprint(c.k),
			"-seed", fmt.Sprint(c.seed),
			"-chaos", shardChaos(c.chaos, c.seed, i),
			"-round-delay", c.roundDelay.String(),
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			reap(procs)
			return runResult{}, fmt.Errorf("start shard %d: %w", i, err)
		}
		procMu.Lock()
		procs[i] = cmd
		procMu.Unlock()
	}
	defer reap(procs)

	// Watchdog: a hang is a failure, never a stuck CI job.
	watchdog := time.AfterFunc(c.timeout, func() {
		procMu.Lock()
		defer procMu.Unlock()
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
			}
		}
		gw.Close()
	})
	defer watchdog.Stop()

	res, err := gw.Run(d.TotalRounds + 8)
	if err != nil {
		return runResult{killed: killedCount}, fmt.Errorf("gateway: %w", err)
	}
	frags := make([]*core.Fragment, c.shards)
	var downIDs []int
	for i, p := range res.Fragments {
		if p == nil {
			downIDs = append(downIDs, i)
			continue
		}
		frag, err := core.DecodeFragment(p, inst.M(), inst.NC())
		if err != nil {
			return runResult{killed: killedCount}, fmt.Errorf("shard %d fragment: %w", i, err)
		}
		frags[i] = frag
	}
	// Assemble certifies internally: this is the soak invariant — every
	// honest servable client served or exempt, no matter what the chaos
	// and the kills did.
	_, rep, err := core.Assemble(inst, core.Config{K: c.k}, frags)
	if err != nil {
		return runResult{killed: killedCount}, err
	}
	return runResult{rep: rep, rounds: res.Rounds, killed: killedCount, down: downIDs}, nil
}

// shardChaos gives each shard a distinct chaos seed so fleets don't drop
// packets in lockstep.
func shardChaos(spec string, seed int64, shard int) string {
	if spec == "" {
		return ""
	}
	return fmt.Sprintf("%s,seed=%d", spec, seed*31+int64(shard)+1)
}

func reap(procs []*exec.Cmd) {
	for _, p := range procs {
		if p == nil {
			continue
		}
		if p.Process != nil {
			p.Process.Kill()
		}
		p.Wait()
	}
}

func findFlnode(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "flnode")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("flnode"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("flnode binary not found: build it next to flsoak (make soak) or pass -flnode")
}
