package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"

	"dfl/internal/analysis"
)

// TestRepoPassesSuite is the regression gate: the repository itself must
// stay clean under every analyzer, so `go test ./...` (tier 1) fails the
// moment a protocol package reintroduces unseeded randomness, an
// order-leaking map walk, an unregistered payload, or a stray goroutine —
// even if someone forgets to run `make lint`.
func TestRepoPassesSuite(t *testing.T) {
	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	sawProtocol := false
	for _, pkg := range pkgs {
		if pkg.ImportPath == "dfl/internal/congest" {
			sawProtocol = true
		}
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			t.Errorf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if !sawProtocol {
		t.Error("./... did not include dfl/internal/congest; the gate is not covering the protocol packages")
	}
}

// runCapture invokes the driver exactly as main does, with captured output.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestBrokenPackageIsOperationalFailure pins the loader contract: a
// package that fails to compile must exit 2 (not 0, not 1) and the error
// must name the failing import path, so a multi-package run says which
// target broke instead of dying on an anonymous typecheck error.
func TestBrokenPackageIsOperationalFailure(t *testing.T) {
	code, _, stderr := runCapture(t, "./internal/analysis/testdata/src/broken")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (operational failure); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "dfl/internal/analysis/testdata/src/broken") {
		t.Errorf("stderr does not name the failing package:\n%s", stderr)
	}
}

func TestUnknownAnalyzerAndFormatExit2(t *testing.T) {
	if code, _, stderr := runCapture(t, "-only", "nosuch", "./internal/seq"); code != 2 || !strings.Contains(stderr, "nosuch") {
		t.Errorf("-only nosuch: exit=%d stderr=%q, want exit 2 naming the analyzer", code, stderr)
	}
	if code, _, stderr := runCapture(t, "-format", "xml", "./internal/seq"); code != 2 || !strings.Contains(stderr, "xml") {
		t.Errorf("-format xml: exit=%d stderr=%q, want exit 2 naming the format", code, stderr)
	}
}

// TestSARIFDriverOutput runs the real driver in SARIF mode over a clean
// package and checks the log parses with the GitHub-required skeleton.
func TestSARIFDriverOutput(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-format", "sarif", "./internal/seq")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("driver SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "flvet" {
		t.Errorf("unexpected SARIF skeleton: version=%q runs=%d", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(analysis.All()) {
		t.Errorf("SARIF lists %d rules, want %d", len(log.Runs[0].Tool.Driver.Rules), len(analysis.All()))
	}
	if log.Runs[0].Results == nil {
		t.Error("clean run must still carry an empty results array")
	}
}

// TestStaleBaselineWarnsButPasses: entries for findings that no longer
// fire must not fail the run — they surface as stderr warnings so the
// file shrinks as debt is paid.
func TestStaleBaselineWarnsButPasses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.baseline")
	if err := os.WriteFile(path, []byte("detrand\tinternal/seq/gone.go\tfixed long ago\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCapture(t, "-baseline", path, "./internal/seq")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("stderr lacks the stale-entry warning:\n%s", stderr)
	}
}

func TestMalformedBaselineExit2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.baseline")
	if err := os.WriteFile(path, []byte("no tabs here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCapture(t, "-baseline", path, "./internal/seq"); code != 2 || !strings.Contains(stderr, "baseline") {
		t.Errorf("malformed baseline: exit=%d stderr=%q, want exit 2", code, stderr)
	}
}

// TestListMatchesDocs is the drift gate between `flvet -list` and the
// analyzer tables in README.md and DESIGN.md §9: every analyzer the
// driver runs must be documented, in the same order, and the docs must
// not advertise analyzers that no longer exist.
func TestListMatchesDocs(t *testing.T) {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}

	code, stdout, stderr := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d; stderr: %s", code, stderr)
	}
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("-list line %q lacks a doc string", line)
			continue
		}
		listed = append(listed, fields[0])
	}
	if !slices.Equal(listed, names) {
		t.Errorf("-list = %v\nAll() = %v", listed, names)
	}

	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	for _, doc := range []struct{ file, section string }{
		{"README.md", ""},
		{"DESIGN.md", "## 9. Static contracts"},
	} {
		raw, err := os.ReadFile(filepath.Join(root, doc.file))
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		if doc.section != "" {
			start := strings.Index(text, doc.section)
			if start < 0 {
				t.Fatalf("%s: section %q not found", doc.file, doc.section)
			}
			text = text[start:]
			if end := strings.Index(text[1:], "\n## "); end >= 0 {
				text = text[:end+1]
			}
		}
		var documented []string
		for _, m := range rowRe.FindAllStringSubmatch(text, -1) {
			documented = append(documented, m[1])
		}
		if !slices.Equal(documented, names) {
			t.Errorf("%s analyzer table drifted:\n documented: %v\n All():     %v", doc.file, documented, names)
		}
	}
}
