package main

import (
	"testing"

	"dfl/internal/analysis"
)

// TestRepoPassesSuite is the regression gate: the repository itself must
// stay clean under every analyzer, so `go test ./...` (tier 1) fails the
// moment a protocol package reintroduces unseeded randomness, an
// order-leaking map walk, an unregistered payload, or a stray goroutine —
// even if someone forgets to run `make lint`.
func TestRepoPassesSuite(t *testing.T) {
	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	sawProtocol := false
	for _, pkg := range pkgs {
		if pkg.ImportPath == "dfl/internal/congest" {
			sawProtocol = true
		}
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			t.Errorf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if !sawProtocol {
		t.Error("./... did not include dfl/internal/congest; the gate is not covering the protocol packages")
	}
}
