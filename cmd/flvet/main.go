// Command flvet is the multichecker driver for the repo's custom static
// analyzers (internal/analysis): the syntactic suite (detrand, maporder,
// congestmsg, poolonly, failclosed, hotmap) plus the dataflow suite
// (bitbudget, shardlocal, dettaint) — the compile-time-checked half of the
// simulator's determinism, CONGEST bit-budget, shard-locality, fail-closed
// wire, and memory-layout contracts. `make lint` (folded into `make
// check`) runs it over ./..., so every change is gated on the suite.
//
// Usage:
//
//	flvet [-only name[,name]] [-list] [-format text|json|sarif|baseline] [-baseline file] [packages]
//
// Packages default to ./... resolved against the enclosing module root.
// -format selects text (the default vet-style lines), json (a findings
// array), sarif (SARIF 2.1.0 for GitHub code scanning), or baseline (the
// suppression-file format). -baseline subtracts a committed suppression
// file from the findings: grandfathered entries do not fail the run,
// stale entries only warn.
//
// Exit status: 0 clean, 1 findings (after baseline subtraction), 2
// operational failure. A package that fails to load or type-check is an
// operational failure reported with its import path, never a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dfl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("flvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := flags.String("format", "text", "output format: text, json, sarif, or baseline")
	baselinePath := flags.String("baseline", "", "suppression file of grandfathered findings (analyzer<TAB>file<TAB>message lines)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif", "baseline":
	default:
		fmt.Fprintf(stderr, "flvet: unknown -format %q (want text, json, sarif, or baseline)\n", *format)
		return 2
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "flvet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	var baseline analysis.Baseline
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "flvet: %v\n", err)
			return 2
		}
		baseline, err = analysis.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "flvet: baseline %s: %v\n", *baselinePath, err)
			return 2
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "flvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "flvet: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunAnalyzers(pkg, suite)...)
	}
	findings := analysis.Findings(diags, root)
	stale := []string(nil)
	if baseline != nil {
		findings, stale = baseline.Filter(findings)
	}

	switch *format {
	case "text":
		err = analysis.WriteText(stdout, findings)
	case "json":
		err = analysis.WriteJSON(stdout, findings)
	case "sarif":
		err = analysis.WriteSARIF(stdout, findings, suite)
	case "baseline":
		err = analysis.WriteBaseline(stdout, findings)
	}
	if err != nil {
		fmt.Fprintf(stderr, "flvet: %v\n", err)
		return 2
	}
	for _, s := range stale {
		fmt.Fprintf(stderr, "flvet: stale baseline entry (fixed? remove it): %s\n", strings.ReplaceAll(s, "\t", " | "))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "flvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
