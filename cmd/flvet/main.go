// Command flvet is the multichecker driver for the repo's custom static
// analyzers (internal/analysis): detrand, maporder, congestmsg, poolonly,
// failclosed, and hotmap — the compile-time-checked half of the simulator's
// determinism, CONGEST, fail-closed wire, and memory-layout contracts.
// `make lint`
// (folded into `make check`) runs it over ./..., so every change is gated
// on the suite.
//
// Usage:
//
//	flvet [-only name[,name]] [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module root.
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dfl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("flvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "flvet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "flvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "flvet: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, suite) {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "flvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
