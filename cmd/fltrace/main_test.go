package main

import (
	"bytes"
	"strings"
	"testing"
)

const testInstance = `ufl 2 3 t
f 0 10
f 1 4
e 0 0 1
e 0 1 2
e 0 2 9
e 1 1 1
e 1 2 2
`

func TestRunTrace(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-k", "4", "-seed", "2"}, strings.NewReader(testInstance), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"derived:", "round 0", "OFFER(class=", "GRANT", "CONNECT", "result: cost=",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q:\n%s", want, s)
		}
	}
	// Node naming convention: facilities f<i>, clients c<j>.
	if !strings.Contains(s, "f0 -> c") && !strings.Contains(s, "f1 -> c") {
		t.Fatalf("no facility->client lines:\n%s", s)
	}
}

func TestRunTraceTruncates(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-k", "16", "-max-lines", "5"}, strings.NewReader(testInstance), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace truncated") {
		t.Fatal("expected truncation marker")
	}
	// Even truncated traces end with the result line.
	if !strings.Contains(out.String(), "result: cost=") {
		t.Fatal("missing result line")
	}
}

func TestRunTraceErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", "/no/such/file"}, strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run([]string{"-k", "0"}, strings.NewReader(testInstance), &out, &errBuf); err == nil {
		t.Fatal("invalid K should fail")
	}
	if err := run(nil, strings.NewReader("not an instance"), &out, &errBuf); err == nil {
		t.Fatal("unparsable instance should fail")
	}
}
