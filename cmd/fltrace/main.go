// Command fltrace runs the distributed protocol with a round-by-round
// message trace, for debugging and for teaching what the protocol does.
//
// Usage:
//
//	flgen -family star -m 4 -nc 6 | fltrace -k 4
//	fltrace -in instance.ufl -k 16 -max-lines 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dfl/internal/congest"
	"dfl/internal/core"
	"dfl/internal/fl"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fltrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "-", "instance file ('-' for stdin)")
		k        = fs.Int("k", 4, "trade-off parameter")
		seed     = fs.Int64("seed", 1, "protocol seed")
		maxLines = fs.Int("max-lines", 500, "truncate the trace after this many message lines (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	inst, err := fl.Read(r)
	if err != nil {
		return err
	}
	d, err := core.Derive(inst, core.Config{K: *k})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instance: %s\n", fl.ComputeStats(inst))
	fmt.Fprintf(stdout, "derived: chi=%d phases=%d iters/phase=%d rounds=%d (proto %d + cleanup)\n",
		d.Chi, d.Phases, d.ItersPerPhase, d.TotalRounds, d.ProtoRounds)

	m := inst.M()
	lines := 0
	truncated := false
	describe := func(msg congest.Message) string {
		return fmt.Sprintf("  %s -> %s  %s",
			nodeName(m, msg.From), nodeName(m, msg.To), core.DescribePayload(msg.Payload))
	}
	sol, rep, err := core.Solve(inst, core.Config{K: *k},
		core.WithSeed(*seed),
		core.WithObserver(func(round int, delivered []congest.Message) {
			if truncated {
				return
			}
			sub := "cleanup"
			if round < d.ProtoRounds {
				sub = [4]string{"clients: DONE", "facilities: OFFER", "clients: GRANT", "facilities: OPEN/CONNECT"}[round%4]
			}
			fmt.Fprintf(stdout, "round %d (%s): %d messages\n", round, sub, len(delivered))
			for _, msg := range delivered {
				fmt.Fprintln(stdout, describe(msg))
				lines++
				if *maxLines > 0 && lines >= *maxLines {
					fmt.Fprintln(stdout, "  ... trace truncated (-max-lines)")
					truncated = true
					return
				}
			}
		}))
	if err != nil {
		return err
	}
	cost := sol.Cost(inst)
	fmt.Fprintf(stdout, "\nresult: cost=%d open=%d rounds=%d messages=%d bits=%d cleanup-clients=%d\n",
		cost, sol.OpenCount(), rep.Net.Rounds, rep.Net.Messages, rep.Net.Bits, rep.CleanupClients)
	return nil
}

func nodeName(m, id int) string {
	if id < m {
		return fmt.Sprintf("f%d", id)
	}
	return fmt.Sprintf("c%d", id-m)
}
