// Command flgen generates facility-location instances in the text instance
// format on stdout.
//
// Usage:
//
//	flgen -family uniform -m 50 -nc 200 -seed 1 > instance.ufl
//	flgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dfl/internal/fl"
	"dfl/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family = fs.String("family", "uniform", "workload family")
		m      = fs.Int("m", 20, "number of facilities")
		nc     = fs.Int("nc", 100, "number of clients")
		seed   = fs.Int64("seed", 1, "generator seed")
		list   = fs.Bool("list", false, "list families and exit")
		stats  = fs.Bool("stats", false, "print instance stats to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range gen.FamilyNames() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	g, err := gen.ByName(*family, *m, *nc)
	if err != nil {
		return err
	}
	inst, err := g.Generate(*seed)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(stderr, fl.ComputeStats(inst))
	}
	return fl.Write(stdout, inst)
}
