// Command flgen generates facility-location instances in the text instance
// format on stdout.
//
// Usage:
//
//	flgen -family uniform -m 50 -nc 200 -seed 1 > instance.ufl
//	flgen -family sparse -m 1000 -nc 1000000 -stream > big.ufl
//	flgen -list
//
// -stream pipes the generator straight to the output in CSR (client-major)
// order without materializing the instance, so memory stays O(m) no matter
// how many edges are emitted. Only families implementing gen.Streamer
// (uniform, sparse) support it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dfl/internal/fl"
	"dfl/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family = fs.String("family", "uniform", "workload family")
		m      = fs.Int("m", 20, "number of facilities")
		nc     = fs.Int("nc", 100, "number of clients")
		seed   = fs.Int64("seed", 1, "generator seed")
		list   = fs.Bool("list", false, "list families and exit")
		stats  = fs.Bool("stats", false, "print instance stats to stderr")
		stream = fs.Bool("stream", false, "stream edges in CSR order with bounded memory (Streamer families only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range gen.FamilyNames() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	g, err := gen.ByName(*family, *m, *nc)
	if err != nil {
		return err
	}
	if *stream {
		s, ok := g.(gen.Streamer)
		if !ok {
			return fmt.Errorf("family %q does not support -stream (no bounded-memory generator)", *family)
		}
		if *stats {
			return fmt.Errorf("-stats needs the materialized instance; drop -stream")
		}
		sw, err := fl.NewStreamWriter(stdout, s.StreamName(*seed), *m, *nc)
		if err != nil {
			return err
		}
		if err := s.Stream(*seed, sw.Facility, sw.Edge); err != nil {
			return err
		}
		return sw.Flush()
	}
	inst, err := g.Generate(*seed)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(stderr, fl.ComputeStats(inst))
	}
	return fl.Write(stdout, inst)
}
