package main

import (
	"bytes"
	"strings"
	"testing"

	"dfl/internal/fl"
)

func TestRunGeneratesParsableInstance(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-family", "euclidean", "-m", "4", "-nc", "9", "-seed", "3", "-stats"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	inst, err := fl.Read(&out)
	if err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
	if inst.M() != 4 || inst.NC() != 9 {
		t.Fatalf("shape (%d,%d)", inst.M(), inst.NC())
	}
	if !strings.Contains(errBuf.String(), "m=4") {
		t.Fatalf("stats missing from stderr: %q", errBuf.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform", "euclidean", "star"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-family", "bogus"}, &out, &errBuf); err == nil {
		t.Fatal("unknown family should fail")
	}
	if err := run([]string{"-badflag"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag should fail")
	}
	if err := run([]string{"-m", "0"}, &out, &errBuf); err == nil {
		t.Fatal("zero facilities should fail")
	}
}

// TestStreamRoundTrip pins the -stream mode to the in-memory generator:
// parsing the streamed text and re-serializing it canonically must yield
// byte-identical output to serializing the materialized instance — same
// name, same costs, same edges.
func TestStreamRoundTrip(t *testing.T) {
	for _, family := range []string{"uniform", "sparse"} {
		args := []string{"-family", family, "-m", "7", "-nc", "23", "-seed", "11"}
		var mem, streamed bytes.Buffer
		if err := run(args, &mem, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		if err := run(append(args, "-stream"), &streamed, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		inst, err := fl.Read(&streamed)
		if err != nil {
			t.Fatalf("%s: streamed output does not parse: %v", family, err)
		}
		var reser bytes.Buffer
		if err := fl.Write(&reser, inst); err != nil {
			t.Fatal(err)
		}
		if reser.String() != mem.String() {
			t.Fatalf("%s: streamed instance differs from materialized one", family)
		}
	}
}

func TestStreamUnsupportedFamily(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-family", "euclidean", "-stream"}, &out, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "does not support -stream") {
		t.Fatalf("euclidean -stream = %v, want unsupported error", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-m", "3", "-nc", "5", "-seed", "9"}, &out, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different output")
	}
}
