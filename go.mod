module dfl

go 1.22
